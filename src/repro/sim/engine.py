"""Core discrete-event simulation loop.

The :class:`Simulator` owns the virtual clock and a priority queue of
scheduled callbacks.  Higher-level abstractions (processes, resources)
are built on top of :meth:`Simulator.schedule`.

Hot-path design notes
---------------------
Queue entries are plain lists ``[time, seq, callback, args]`` rather
than objects with an ``__lt__`` method: ``heapq`` then compares entries
with C-level list comparison (time first, then the unique sequence
number, never reaching the callback), which removes a Python-level
method call per heap comparison.

Zero-delay events -- process resumes, event wake-ups and other
callbacks scheduled *at the current timestamp while it is being
processed* -- bypass the heap entirely and go to a FIFO *ready* deque.
This preserves the global (time, seq) execution order: every heap entry
due at the current timestamp was created strictly earlier (the clock
had not reached that time yet) and therefore carries a smaller sequence
number than any ready entry, so draining heap entries at the current
time first and the ready deque second is exactly seq order.

Cancellation clears the callback slot in place (``entry[2] = None``);
cancelled entries are purged lazily when they surface, and
:meth:`drain_cancelled` compacts eagerly when cancellations pile up.
:meth:`run` dispatches in a single pass -- one traversal per event
instead of the previous ``peek()`` + ``step()`` pair -- and batches
same-timestamp callbacks without re-checking the deadline between them.
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Deque, List, Optional

#: Queue-entry field indices.  Entries are ``[time, seq, callback, args,
#: single]``: ``single`` is True when ``args`` is one bare positional
#: argument (the trampoline fast paths), False when it is a tuple.
_TIME, _SEQ, _CALLBACK, _ARGS, _SINGLE = 0, 1, 2, 3, 4

#: ``drain_cancelled`` runs automatically once at least this many
#: cancelled entries are buried in the queues *and* they outnumber the
#: live entries (see :meth:`Simulator.cancel`).
_AUTO_DRAIN_MIN_CANCELLED = 512


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


class Simulator:
    """Event loop with an integer nanosecond clock.

    The simulator is single-threaded and deterministic: callbacks
    scheduled for the same timestamp run in scheduling order.
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._queue: List[list] = []
        self._ready: Deque[list] = deque()
        self._running = False
        self._event_count = 0
        self._cancelled = 0

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._event_count

    def __len__(self) -> int:
        """Pending queue entries, including not-yet-purged cancellations."""
        return len(self._queue) + len(self._ready)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> list:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now.

        Returns an opaque handle accepted by :meth:`cancel`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        entry = [self._now + int(delay), self._seq, callback, args, False]
        self._seq += 1
        if delay == 0:
            self._ready.append(entry)
        else:
            heappush(self._queue, entry)
        return entry

    def schedule_at(self, time: int, callback: Callable[..., None], *args: Any) -> list:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        entry = [int(time), self._seq, callback, args, False]
        self._seq += 1
        if time == self._now:
            self._ready.append(entry)
        else:
            heappush(self._queue, entry)
        return entry

    def call_soon(self, callback: Callable[..., None], value: Any = None) -> list:
        """Fast path: run ``callback(value)`` at the current timestamp.

        Used by the process/event trampoline for resume and wake-up
        callbacks whose delay is always zero; skips delay validation and
        the heap.
        """
        entry = [self._now, self._seq, callback, value, True]
        self._seq += 1
        self._ready.append(entry)
        return entry

    def call_after(self, delay: int, callback: Callable[..., None],
                   value: Any = None) -> list:
        """Fast path: run ``callback(value)`` after ``delay`` ns.

        Internal engine/trampoline entry point: a single positional
        argument is stored bare (no tuple) and no ``int`` coercion is
        performed.  Negative delays still raise -- a silent backwards
        clock would corrupt event ordering -- the guard merely folds
        into the queue-selection branch.
        """
        entry = [self._now + delay, self._seq, callback, value, True]
        self._seq += 1
        if delay > 0:
            heappush(self._queue, entry)
        elif delay == 0:
            self._ready.append(entry)
        else:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return entry

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, handle: list) -> None:
        """Cancel a previously scheduled callback (lazy removal).

        Cancelling a handle whose callback already executed is a no-op
        (the dispatch loop marks entries spent).  A live cancelled entry
        stays queued until it either surfaces or an automatic or
        explicit :meth:`drain_cancelled` compacts the queue, so
        long-lived runs with many cancelled timers do not grow the heap
        without bound.
        """
        if handle[_CALLBACK] is not None:
            handle[_CALLBACK] = None
            handle[_ARGS] = None
            self._cancelled += 1
            if (self._cancelled >= _AUTO_DRAIN_MIN_CANCELLED
                    and self._cancelled * 2 >= len(self._queue) + len(self._ready)):
                self.drain_cancelled()

    def is_cancelled(self, handle: list) -> bool:
        """True if ``handle`` is spent: cancelled or already executed."""
        return handle[_CALLBACK] is None

    def drain_cancelled(self) -> int:
        """Eagerly remove every cancelled entry from the queues.

        Returns the number of entries removed.  ``run``/``step`` purge
        cancelled entries lazily when they reach the front; this
        compaction keeps the heap small when many timers are cancelled
        long before their deadline (retry timers, watchdogs).
        """
        before = len(self._queue) + len(self._ready)
        # Compact in place: run() holds direct references to both
        # containers, so they must never be rebound mid-run.
        self._queue[:] = [entry for entry in self._queue
                          if entry[_CALLBACK] is not None]
        heapify(self._queue)
        if self._ready:
            live = [entry for entry in self._ready
                    if entry[_CALLBACK] is not None]
            self._ready.clear()
            self._ready.extend(live)
        self._cancelled = 0
        return before - len(self._queue) - len(self._ready)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _purge(self) -> None:
        """Drop cancelled entries from the front of both queues."""
        queue = self._queue
        while queue and queue[0][_CALLBACK] is None:
            heappop(queue)
            self._cancelled -= 1
        ready = self._ready
        while ready and ready[0][_CALLBACK] is None:
            ready.popleft()
            self._cancelled -= 1

    def peek(self) -> Optional[int]:
        """Return the timestamp of the next pending event, or ``None``."""
        self._purge()
        if self._ready:
            return self._now
        if self._queue:
            return self._queue[0][_TIME]
        return None

    def step(self) -> bool:
        """Execute the next scheduled callback.

        Returns ``True`` if a callback was executed, ``False`` if the
        queue was empty.
        """
        while True:
            self._purge()
            queue = self._queue
            if self._ready:
                # Heap entries due at the current time predate every
                # ready entry (see module docstring) and so run first.
                if queue and queue[0][_TIME] <= self._now:
                    entry = heappop(queue)
                else:
                    entry = self._ready.popleft()
            elif queue:
                entry = heappop(queue)
            else:
                return False
            callback = entry[_CALLBACK]
            if callback is None:
                self._cancelled -= 1
                continue
            # Mark the entry spent so a late cancel() is a no-op.
            entry[_CALLBACK] = None
            self._now = entry[_TIME]
            self._event_count += 1
            if entry[_SINGLE]:
                callback(entry[_ARGS])
            else:
                callback(*entry[_ARGS])
            return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the event queue empties or a limit is reached.

        Parameters
        ----------
        until:
            Absolute time (ns) at which to stop.  Events scheduled at
            exactly ``until`` are still executed, and the clock always
            ends at ``max(until, now)`` -- it advances to the deadline
            even when the queue drains early, and never moves backwards
            for a deadline already in the past.
        max_events:
            Safety valve limiting the number of callbacks executed in
            this call; attempting to execute more raises
            :class:`SimulationError`.

        Returns
        -------
        int
            The simulated time when the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        queue = self._queue
        ready = self._ready
        pop = heappop
        popleft = ready.popleft
        executed = 0
        # ``budget`` is the number of callbacks still allowed; negative
        # means unlimited.  Checked before each dispatch so the limit is
        # exact and the over-budget event stays queued.
        budget = -1 if max_events is None else max_events
        deadline = float("inf") if until is None else until
        now = self._now
        try:
            while now <= deadline:
                if ready:
                    # Heap entries due now predate the ready entries.
                    if queue and queue[0][_TIME] <= now:
                        if queue[0][_CALLBACK] is None:
                            pop(queue)
                            self._cancelled -= 1
                            continue
                        if executed == budget:
                            raise SimulationError(
                                f"exceeded max_events={max_events}; possible livelock"
                            )
                        entry = pop(queue)
                    else:
                        entry = popleft()
                        if entry[_CALLBACK] is None:
                            self._cancelled -= 1
                            continue
                        if executed == budget:
                            ready.appendleft(entry)
                            raise SimulationError(
                                f"exceeded max_events={max_events}; possible livelock"
                            )
                elif queue:
                    head = queue[0]
                    if head[_CALLBACK] is None:
                        pop(queue)
                        self._cancelled -= 1
                        continue
                    time = head[_TIME]
                    if time > deadline:
                        break
                    if executed == budget:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; possible livelock"
                        )
                    entry = pop(queue)
                    now = self._now = time
                else:
                    break
                executed += 1
                # Keep the public counter exact per event, so callbacks
                # reading events_processed mid-run see live accounting.
                self._event_count += 1
                callback = entry[_CALLBACK]
                # Mark the entry spent so a late cancel() is a no-op.
                entry[_CALLBACK] = None
                if entry[_SINGLE]:
                    callback(entry[_ARGS])
                else:
                    callback(*entry[_ARGS])
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Run the simulation to completion with a livelock guard."""
        return self.run(max_events=max_events)
