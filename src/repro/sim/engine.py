"""Core discrete-event simulation loop.

The :class:`Simulator` owns the virtual clock and a priority queue of
scheduled callbacks.  Higher-level abstractions (processes, resources)
are built on top of :meth:`Simulator.schedule`.

Hot-path design notes
---------------------
Queue entries are plain lists ``[time, seq, callback, args]`` rather
than objects with an ``__lt__`` method: the timer queues then compare
entries with C-level list comparison (time first, then the unique
sequence number, never reaching the callback), which removes a
Python-level method call per comparison.

Zero-delay events -- process resumes, event wake-ups and other
callbacks scheduled *at the current timestamp while it is being
processed* -- bypass the timer queue entirely and go to a FIFO *ready*
deque.  This preserves the global (time, seq) execution order: every
timer entry due at the current timestamp was created strictly earlier
(the clock had not reached that time yet) and therefore carries a
smaller sequence number than any ready entry, so draining timer entries
at the current time first and the ready deque second is exactly seq
order.

Two timer backends sit behind the same API:

* ``heap`` -- a binary heap (``heapq``).  O(log n) per operation,
  robust for sparse or long-horizon timer populations.
* ``calendar`` -- a calendar queue (bucketed timing wheel).  Timers
  hash into power-of-two-width buckets by ``time >> shift``; the bucket
  for the current *day* is sorted once (C timsort) into the *current
  run* and dispatched in order, while same-day insertions go through a
  C ``bisect.insort``.  Pushes are O(1) list appends for future days,
  which beats the heap when many short delays are in flight at once
  (the fabric workloads).  Both backends dispatch in exactly the same
  (time, seq) order, so simulation results are byte-identical.

``scheduler="auto"`` (the default) starts on the heap and adopts the
calendar at the top of a :meth:`run` call when the pending timer
population is dense: at least ``_AUTO_CALENDAR_MIN_PENDING`` timers
whose mean spacing is within a few bucket widths.  Sparse populations
(e.g. a handful of long watchdog timers) stay on the heap, where one
rotation of mostly-empty buckets would otherwise be wasted work.  The
adoption decision reads only simulator state, never the wall clock, so
it is deterministic.

**Per-delay-class FIFO lanes** sit in front of both timer backends.
``call_after`` delays that repeat often (the fabric's link serialization
constants, PHY latency, datalink processing and switch forwarding
delays) are promoted to a dedicated lane: because the clock is monotonic
and the delay is constant, entries of one lane are created in
nondecreasing (time, seq) order, so a plain deque *is* already sorted.
Only the lane's head entry is parked in the heap/calendar; when it is
dispatched (or cancelled) the next entry of the lane is promoted into
the backend.  The timer structures therefore hold at most one entry per
lane instead of the whole in-flight population -- heap pushes shrink
from O(log n) on thousands of entries to O(log lanes), and the calendar
queue's same-day ``insort`` stops shifting long runs.  Dispatch order is
exactly the (time, seq) order the un-laned queues would produce: the
backend always contains each lane's minimum, and successors promoted at
dispatch time carry times ``>= now`` with sequence numbers allocated at
creation, so the timer-before-ready rule is unchanged.

Cancellation clears the callback slot in place (``entry[2] = None``);
cancelled entries are purged lazily when they surface, and
:meth:`drain_cancelled` compacts eagerly when cancellations pile up.
:meth:`run` dispatches in a single pass -- one traversal per event
instead of a ``peek()`` + ``step()`` pair -- and batches
same-timestamp callbacks without re-checking the deadline between them.
"""

from __future__ import annotations

import importlib
import os
import warnings
from bisect import insort
from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Deque, List, Optional, Tuple

#: Queue-entry field indices.  Entries are ``[time, seq, callback, args,
#: single, lane]``: ``single`` is True when ``args`` is one bare
#: positional argument (the trampoline fast paths), False when it is a
#: tuple.  ``lane`` is non-None exactly when the entry is the *head* of
#: a per-delay FIFO lane parked in the timer backend (see the lane notes
#: in the module docstring); the unique ``seq`` at index 1 guarantees
#: list comparison never reaches it.
_TIME, _SEQ, _CALLBACK, _ARGS, _SINGLE, _LANE = 0, 1, 2, 3, 4, 5

#: ``drain_cancelled`` runs automatically once at least this many
#: cancelled entries are buried in the queues *and* they outnumber the
#: live entries (see :meth:`Simulator.cancel`).
_AUTO_DRAIN_MIN_CANCELLED = 512

#: ``scheduler="auto"`` adopts the calendar backend only when at least
#: this many timers are pending at the top of a ``run()`` call (small
#: enough that reactive closed-loop workloads, which only pre-schedule
#: their initial request windows, still qualify) ...
_AUTO_CALENDAR_MIN_PENDING = 16
#: ... and their mean spacing is at most this many bucket widths (a
#: dense population; sparse populations stay on the heap).
_AUTO_CALENDAR_MAX_GAP_BUCKETS = 4

#: A ``call_after`` delay value earns a dedicated FIFO lane once it has
#: been scheduled this many times.  Fabric delays (link serialization
#: per size class, PHY latency, datalink processing, switch forwarding)
#: repeat millions of times, so the threshold only needs to filter out
#: incidental repeats.
_LANE_MIN_REPEATS = 128
#: At most this many distinct delay classes get lanes; the fabric needs
#: fewer than ten.
_LANE_MAX_LANES = 8
#: Lane machinery (repeat tracking, arming, parking) engages only
#: while the *heap* holds at least this many entries.  Parking pays
#: when the parked population is a large fraction of the heap -- a
#: same-delay timer storm -- because every entry still reaches the
#: backend eventually, one promotion at a time; what the lane buys is
#: a smaller heap (cheaper O(log n) sifts) for everyone else in the
#: meantime.  Steady-state fabric traffic over a few-thousand-entry
#: heap parks only dozens of timers at a time, so the bookkeeping is a
#: measured net loss there (~7% wall on the pair/star workloads at a
#: 512 threshold); the gate is set above any steady-state workload
#: depth and below degenerate storm depths.  It reads
#: ``len(self._queue)``, which the calendar backend keeps empty: lanes
#: never engage there, deliberately -- the calendar already gives O(1)
#: far-future appends, and parking would turn those into per-dispatch
#: same-day insorts.  Entries parked behind a busy head always stay in
#: the lane (FIFO correctness) regardless of depth.
_LANE_MIN_DEPTH = 8192
#: Bound on the repeat-counting dict so arbitrary delay mixes (e.g.
#: randomized backoff) cannot grow it without limit.
_LANE_MAX_TRACKED = 64


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


class SanitizerError(SimulationError):
    """Raised when a runtime sanitizer invariant check fails.

    Sanitizer checks (enabled with ``Simulator(sanitize=True)`` or the
    ``SIM_SANITIZE=1`` environment variable) guard invariants that the
    normal dispatch loops assume rather than verify: a monotonic clock,
    total (time, seq) dispatch order, credit conservation and bounded
    in-flight tracking maps.  A :class:`SanitizerError` therefore always
    indicates an engine or component bug, never a modelling error.
    """


# ----------------------------------------------------------------------
# Compiled dispatch core (repro.sim._ccore) loading
# ----------------------------------------------------------------------
#: Loader memo: ``module`` is the imported extension (or None),
#: ``checked`` marks that an import was attempted, ``error`` keeps the
#: reason the compiled core is unavailable for the core="c" error
#: message, ``warned`` dedupes the broken-extension warning.
_CCORE_STATE = {"checked": False, "module": None, "error": None,
                "warned": False}


def _reset_ccore_state() -> None:
    """Forget the cached ``_ccore`` import outcome (test hook)."""
    _CCORE_STATE.update(checked=False, module=None, error=None, warned=False)


def _load_ccore(build: bool = False):
    """Import (optionally building) the compiled core, or return ``None``.

    Fallback policy, mirroring the PR 9 fork-worker discipline:

    * extension simply not built (``ModuleNotFoundError``) -- silent:
      the pure-Python engine is a first-class peer, not a degraded mode;
    * extension present but broken (ABI drift, truncated ``.so``) --
      one ``RuntimeWarning`` per process, then the Python engine;
    * ``build=True`` (an explicit ``core="c"`` request) additionally
      attempts an on-demand gcc build first; build failures land in
      ``_CCORE_STATE["error"]`` for the caller's error message.
    """
    state = _CCORE_STATE
    if state["module"] is not None:
        return state["module"]
    if state["checked"] and not build:
        return None
    state["checked"] = True
    if build:
        try:
            from repro.sim import _ccore_build
            _ccore_build.ensure_built()
        except Exception as error:  # CCoreBuildError or worse
            state["error"] = str(error)
    try:
        # import_module, not ``from repro.sim import _ccore``: the
        # from-import wraps a missing submodule in a plain ImportError
        # ("cannot import name ..."), which would be indistinguishable
        # from a *broken* extension; import_module keeps the
        # ModuleNotFoundError that makes not-built silent.
        _ccore = importlib.import_module("repro.sim._ccore")
    except ModuleNotFoundError as error:
        if state["error"] is None:
            state["error"] = str(error)
        return None
    except Exception as error:
        state["error"] = str(error)
        if not state["warned"]:
            state["warned"] = True
            warnings.warn(
                "repro.sim._ccore exists but failed to import "
                f"({error}); using the pure-Python engine "
                "(rebuild with `python -m repro.sim._ccore_build`)",
                RuntimeWarning, stacklevel=3)
        return None
    version = getattr(_ccore, "CCORE_API_VERSION", None)
    if version != 1:
        state["error"] = f"ABI mismatch (CCORE_API_VERSION={version!r})"
        if not state["warned"]:
            state["warned"] = True
            warnings.warn(
                f"repro.sim._ccore has {state['error']}; using the "
                "pure-Python engine (rebuild with "
                "`python -m repro.sim._ccore_build`)",
                RuntimeWarning, stacklevel=3)
        return None
    state["module"] = _ccore
    state["error"] = None
    return _ccore


def _resolve_core(core: Optional[str], sanitize: Optional[bool]) -> str:
    """Pick the dispatch core: ``"c"`` or ``"py"``.

    Resolution order: explicit ``core=`` argument, then the ``SIM_CORE``
    environment variable, then ``"auto"``.  The sanitizer always routes
    through the instrumented Python loop -- its per-event invariant
    checks live there -- so ``sanitize=True`` (or ``SIM_SANITIZE``)
    forces ``"py"`` even under ``SIM_CORE=c``.
    """
    if core is None:
        core = os.environ.get("SIM_CORE") or "auto"
    if core not in ("auto", "c", "py"):
        raise ValueError(f"unknown core {core!r} "
                         "(expected 'auto', 'c' or 'py')")
    if sanitize is None:
        sanitize = os.environ.get("SIM_SANITIZE", "0") not in ("", "0")
    if sanitize or core == "py":
        return "py"
    if _load_ccore(build=(core == "c")) is not None:
        return "c"
    if core == "c":
        raise SimulationError(
            "core='c' requested but the compiled dispatch core is "
            f"unavailable: {_CCORE_STATE['error'] or 'import failed'} "
            "(build it with `python -m repro.sim._ccore_build`, or use "
            "core='auto' to fall back silently)")
    return "py"


class Simulator:
    """Event loop with an integer nanosecond clock.

    The simulator is single-threaded and deterministic: callbacks
    scheduled for the same timestamp run in scheduling order, whichever
    timer backend is active.

    Parameters
    ----------
    scheduler:
        ``"heap"``, ``"calendar"`` or ``"auto"`` (default).  ``auto``
        starts on the heap and switches to the calendar queue when a
        dense short-delay timer population shows up (see module notes).
    calendar_bucket_ns:
        Bucket (day) width of the calendar backend, power of two.
    calendar_buckets:
        Number of buckets (one rotation covers ``bucket_ns * buckets``
        nanoseconds), power of two.
    sanitize:
        Enable the runtime sanitizer: every dispatched event is checked
        against the monotonic-clock and total (time, seq) order
        invariants, and sanitizer-aware components (credit pools,
        datalinks, the event transport) install their own invariant
        checks.  ``None`` (default) reads the ``SIM_SANITIZE``
        environment variable (``"0"``/empty/unset means off).  When off,
        the fused dispatch loops run unchanged -- the sanitizer costs
        nothing when disabled.
    core:
        Dispatch core: ``"py"`` is this pure-Python engine, ``"c"`` the
        compiled ``repro.sim._ccore`` extension (built on demand,
        errors clearly when no compiler is available), ``"auto"`` picks
        the compiled core when an already-built extension imports and
        falls back silently otherwise.  ``None`` (default) reads the
        ``SIM_CORE`` environment variable, defaulting to ``"auto"``.
        Both cores dispatch in the identical total (time, seq) order,
        so simulation results are byte-identical; ``sanitize=True``
        always routes through the instrumented Python loop.
    """

    __slots__ = ("_now", "_seq", "_queue", "_ready", "_running",
                 "_event_count", "_cancelled", "_policy", "_cal_bucket_ns",
                 "_cal_shift", "_cal_mask", "_cal_active", "_cal_buckets",
                 "_cal_count", "_cal_day", "_cur", "_cur_idx",
                 "_auto_checked_pending", "_sanitize", "_san_last_time",
                 "_san_last_seq", "_san_trace", "_lane_map", "_lane_seen",
                 "_lane_count")

    def __new__(cls, scheduler: str = "auto", calendar_bucket_ns: int = 128,
                calendar_buckets: int = 8192,
                sanitize: Optional[bool] = None,
                core: Optional[str] = None) -> "Simulator":
        # Factory: a plain ``Simulator(...)`` constructs the compiled-
        # core subclass when core resolution picks "c".  Explicit
        # subclasses (and _CSimulator itself) take the normal path.
        if cls is Simulator and _resolve_core(core, sanitize) == "c":
            return object.__new__(_CSimulator)
        return object.__new__(cls)

    def __init__(self, scheduler: str = "auto", calendar_bucket_ns: int = 128,
                 calendar_buckets: int = 8192,
                 sanitize: Optional[bool] = None,
                 core: Optional[str] = None) -> None:
        if scheduler not in ("auto", "heap", "calendar"):
            raise ValueError(f"unknown scheduler {scheduler!r} "
                             "(expected 'heap', 'calendar' or 'auto')")
        if calendar_bucket_ns <= 0 or calendar_bucket_ns & (calendar_bucket_ns - 1):
            raise ValueError("calendar_bucket_ns must be a positive power of two")
        if calendar_buckets <= 0 or calendar_buckets & (calendar_buckets - 1):
            raise ValueError("calendar_buckets must be a positive power of two")
        if sanitize is None:
            sanitize = os.environ.get("SIM_SANITIZE", "0") not in ("", "0")
        self._sanitize = bool(sanitize)
        self._san_last_time = -1
        self._san_last_seq = -1
        self._san_trace: Optional[List[Tuple[int, int, str]]] = None
        self._now: int = 0
        self._seq: int = 0
        self._queue: List[list] = []
        self._ready: Deque[list] = deque()
        self._running = False
        self._event_count = 0
        self._cancelled = 0
        self._policy = scheduler
        self._cal_bucket_ns = calendar_bucket_ns
        self._cal_shift = calendar_bucket_ns.bit_length() - 1
        self._cal_mask = calendar_buckets - 1
        self._cal_active = False
        self._cal_buckets: List[List[list]] = []
        self._cal_count = 0  # entries parked in buckets (not in the run)
        self._cal_day = 0
        self._cur: List[list] = []  # sorted run for days <= _cal_day
        self._cur_idx = 0
        self._auto_checked_pending = 0
        #: delay -> [deque of parked successors, head-in-backend flag].
        self._lane_map: dict = {}  # simlint: disable=SIM006 -- bounded by _LANE_MAX_LANES
        #: delay -> times seen; candidates for lane promotion.
        self._lane_seen: dict = {}  # simlint: disable=SIM006 -- bounded by _LANE_MAX_TRACKED
        #: Entries parked in lane deques (excluded from the backends).
        self._lane_count = 0
        if scheduler == "calendar":
            self._activate_calendar()

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far.

        Inside :meth:`run` the counter is accumulated locally and
        flushed when the loop exits (including on error), so a callback
        reading it mid-run sees the count as of the run's start; every
        external observer (after ``run`` returns or raises) sees exact
        accounting.
        """
        return self._event_count

    @property
    def scheduler(self) -> str:
        """Timer backend currently in use (``"heap"`` or ``"calendar"``)."""
        return "calendar" if self._cal_active else "heap"

    @property
    def scheduler_policy(self) -> str:
        """The backend selection policy this simulator was built with."""
        return self._policy

    @property
    def sanitize(self) -> bool:
        """Whether the runtime sanitizer is active on this simulator."""
        return self._sanitize

    @property
    def core(self) -> str:
        """Dispatch core in use: ``"py"`` here, ``"c"`` on the subclass."""
        return "py"

    def enable_dispatch_trace(self) -> List[Tuple[int, int, str]]:
        """Record every dispatch as ``(time, seq, callback qualname)``.

        Only available while sanitizing (the trace hook lives in the
        sanitized dispatch path).  Returns the live trace list; the
        lockstep heap-versus-calendar cross-check diffs two of these to
        find the first divergence.
        """
        if not self._sanitize:
            raise SimulationError(
                "dispatch tracing requires Simulator(sanitize=True)")
        if self._san_trace is None:
            self._san_trace = []
        return self._san_trace

    def _san_check(self, entry: list, callback: Callable[..., None]) -> None:
        """Sanitizer: dispatch-order invariants, checked per event."""
        time = entry[_TIME]
        seq = entry[_SEQ]
        if time < self._now:
            raise SanitizerError(
                f"backwards clock: dispatching entry at t={time} "
                f"(seq={seq}) behind the current time t={self._now}")
        if time < self._san_last_time or (
                time == self._san_last_time and seq <= self._san_last_seq):
            raise SanitizerError(
                "dispatch order violation: entry "
                f"(t={time}, seq={seq}) dispatched after "
                f"(t={self._san_last_time}, seq={self._san_last_seq})")
        self._san_last_time = time
        self._san_last_seq = seq
        if self._san_trace is not None:
            self._san_trace.append(
                (time, seq, getattr(callback, "__qualname__",
                                    type(callback).__name__)))

    def __len__(self) -> int:
        """Pending queue entries, including not-yet-purged cancellations."""
        if self._cal_active:
            return (len(self._cur) - self._cur_idx + self._cal_count
                    + len(self._ready) + self._lane_count)
        return len(self._queue) + len(self._ready) + self._lane_count

    # ------------------------------------------------------------------
    # Calendar backend plumbing
    # ------------------------------------------------------------------
    def _activate_calendar(self) -> None:
        """Switch the timer backend to the calendar queue.

        Pending heap entries migrate in place (the entry lists move, so
        outstanding cancellation handles stay valid).
        """
        self._cal_buckets = [[] for _ in range(self._cal_mask + 1)]
        self._cal_active = True
        shift = self._cal_shift
        mask = self._cal_mask
        self._cal_day = self._now >> shift
        queue = self._queue
        if queue:
            cal_day = self._cal_day
            buckets = self._cal_buckets
            parked = 0
            for entry in queue:
                if entry[_CALLBACK] is None:
                    self._cancelled -= 1
                    continue
                day = entry[_TIME] >> shift
                if day <= cal_day:
                    insort(self._cur, entry, self._cur_idx)
                else:
                    buckets[day & mask].append(entry)
                    parked += 1
            self._cal_count += parked
            self._queue = []

    def _maybe_adopt_calendar(self) -> None:
        """``auto`` policy: adopt the calendar for dense timer populations.

        The density scan is O(pending), so after a failed check it is
        re-attempted only once the population has doubled -- repeated
        ``run()`` calls over a stable sparse population stay O(1).
        """
        queue = self._queue
        pending = len(queue)
        if (pending < _AUTO_CALENDAR_MIN_PENDING
                or pending < 2 * self._auto_checked_pending):
            return
        span = max(entry[_TIME] for entry in queue) - self._now
        if span // pending <= self._cal_bucket_ns * _AUTO_CALENDAR_MAX_GAP_BUCKETS:
            self._activate_calendar()
        else:
            self._auto_checked_pending = pending

    def _cal_advance(self) -> bool:
        """Load the next non-empty day into the current sorted run.

        Scans forward one bucket per day; if a whole rotation is empty
        (every pending timer is more than ``buckets * bucket_ns`` away)
        it jumps straight to the earliest pending day -- the sparse
        fallback that keeps long-horizon timers correct, if not fast.
        """
        if not self._cal_count:
            return False
        shift = self._cal_shift
        mask = self._cal_mask
        buckets = self._cal_buckets
        day = self._cal_day
        for _ in range(mask + 1):
            day += 1
            bucket = buckets[day & mask]
            if bucket:
                run = [e for e in bucket if (e[_TIME] >> shift) == day]
                if run:
                    break
        else:
            # Sparse fallback: nothing within one rotation.
            day = min(entry[_TIME] >> shift
                      for bucket in buckets for entry in bucket)
            bucket = buckets[day & mask]
            run = [e for e in bucket if (e[_TIME] >> shift) == day]
        if len(run) == len(bucket):
            buckets[day & mask] = []
        else:
            buckets[day & mask] = [e for e in bucket
                                   if (e[_TIME] >> shift) != day]
        run.sort()
        self._cur = run
        self._cur_idx = 0
        self._cal_count -= len(run)
        self._cal_day = day
        return True

    def _cal_next(self) -> Optional[list]:
        """Earliest live timer entry, or ``None``; purges cancellations.

        The returned entry is *not* popped; callers that dispatch it
        advance ``_cur_idx`` themselves.
        """
        while True:
            cur = self._cur
            idx = self._cur_idx
            n = len(cur)
            while idx < n:
                entry = cur[idx]
                if entry[_CALLBACK] is None:
                    idx += 1
                    self._cancelled -= 1
                    continue
                self._cur_idx = idx
                return entry
            self._cur_idx = idx
            if not self._cal_advance():
                return None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _push_timer(self, entry: list) -> None:
        """Park a future-time entry in the active timer backend."""
        if self._cal_active:
            day = entry[_TIME] >> self._cal_shift
            if day <= self._cal_day:
                # Same-day (or already-loaded-day) push: ordered insert
                # into the current sorted run.  Entries before _cur_idx
                # are spent and strictly smaller, so a lo=0 bisect would
                # be correct too -- lo=_cur_idx just skips them.
                insort(self._cur, entry, self._cur_idx)
            else:
                self._cal_buckets[day & self._cal_mask].append(entry)
                self._cal_count += 1
        else:
            heappush(self._queue, entry)

    def _promote_lane(self, lane: list) -> None:
        """Move a lane's next live entry into the timer backend.

        Called when the lane's current head leaves the backend
        (dispatched or cancelled).  Cancelled parked entries are purged
        on the way -- they never reach the backend, so the lazy-purge
        accounting is settled here.  When the deque is empty the lane is
        marked headless and the next ``call_after`` re-arms it.
        """
        pending = lane[0]
        while pending:
            nxt = pending.popleft()
            self._lane_count -= 1
            if nxt[_CALLBACK] is not None:
                nxt[_LANE] = lane
                self._push_timer(nxt)
                return
            self._cancelled -= 1
        lane[1] = False

    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> list:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now.

        Returns an opaque handle accepted by :meth:`cancel`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        entry = [self._now + int(delay), self._seq, callback, args, False, None]
        self._seq += 1
        if delay == 0:
            self._ready.append(entry)
        else:
            self._push_timer(entry)
        return entry

    def schedule_at(self, time: int, callback: Callable[..., None], *args: Any) -> list:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        entry = [int(time), self._seq, callback, args, False, None]
        self._seq += 1
        if time == self._now:
            self._ready.append(entry)
        else:
            self._push_timer(entry)
        return entry

    def call_soon(self, callback: Callable[..., None], value: Any = None) -> list:
        """Fast path: run ``callback(value)`` at the current timestamp.

        Used by the process/event trampoline for resume and wake-up
        callbacks whose delay is always zero; skips delay validation and
        the timer queue.
        """
        entry = [self._now, self._seq, callback, value, True, None]
        self._seq += 1
        self._ready.append(entry)
        return entry

    def call_after(self, delay: int, callback: Callable[..., None],
                   value: Any = None) -> list:
        """Fast path: run ``callback(value)`` after ``delay`` ns.

        Internal engine/trampoline entry point: a single positional
        argument is stored bare (no tuple) and no ``int`` coercion is
        performed.  Negative delays still raise -- a silent backwards
        clock would corrupt event ordering -- the guard merely folds
        into the queue-selection branch.

        Delays that repeat at least ``_LANE_MIN_REPEATS`` times earn a
        FIFO lane: while the lane's head sits in the timer backend,
        later entries of the same delay park in the lane deque (an O(1)
        append, no heap/insort work) and are promoted one at a time as
        heads dispatch.  See the lane notes in the module docstring.
        """
        entry = [self._now + delay, self._seq, callback, value, True, None]
        self._seq += 1
        if delay > 0:
            # Lane logic only runs under pressure: either entries are
            # parked in some lane (FIFO correctness demands same-delay
            # traffic keeps flowing through that lane's deque) or the
            # heap is deep enough that arming a head can pay.  The
            # common shallow/calendar case pays one counter check and
            # one len() here -- no dict lookups, no repeat tracking.
            # A direct push past an armed-but-empty lane head is safe:
            # the backend's global (time, seq) order covers it, and the
            # head disarms itself at dispatch when its deque is empty.
            if self._lane_count or len(self._queue) >= _LANE_MIN_DEPTH:
                lane = self._lane_map.get(delay)
                if lane is not None:
                    if lane[1]:
                        # A head of this lane is already parked in the
                        # timer backend; queue behind it.  The clock is
                        # monotonic and the delay constant, so the deque
                        # stays in (time, seq) order by construction.
                        lane[0].append(entry)
                        self._lane_count += 1
                        return entry
                    if len(self._queue) >= _LANE_MIN_DEPTH:
                        lane[1] = True
                        entry[_LANE] = lane
                elif len(self._lane_map) < _LANE_MAX_LANES:
                    seen = self._lane_seen
                    count = seen.get(delay, 0)
                    if count >= _LANE_MIN_REPEATS:
                        self._lane_map[delay] = lane = [deque(), False]
                        if len(self._queue) >= _LANE_MIN_DEPTH:
                            lane[1] = True
                            entry[_LANE] = lane
                        del seen[delay]
                    elif count or len(seen) < _LANE_MAX_TRACKED:
                        seen[delay] = count + 1
            if self._cal_active:
                day = entry[0] >> self._cal_shift
                if day <= self._cal_day:
                    insort(self._cur, entry, self._cur_idx)
                else:
                    self._cal_buckets[day & self._cal_mask].append(entry)
                    self._cal_count += 1
            else:
                heappush(self._queue, entry)
        elif delay == 0:
            self._ready.append(entry)
        else:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return entry

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, handle: list) -> None:
        """Cancel a previously scheduled callback (lazy removal).

        Cancelling a handle whose callback already executed is a no-op
        (the dispatch loop marks entries spent).  A live cancelled entry
        stays queued until it either surfaces or an automatic or
        explicit :meth:`drain_cancelled` compacts the queue, so
        long-lived runs with many cancelled timers do not grow the
        timer queues without bound.
        """
        if handle[_CALLBACK] is not None:
            handle[_CALLBACK] = None
            handle[_ARGS] = None
            self._cancelled += 1
            lane = handle[_LANE]
            if lane is not None:
                # A lane head was cancelled while parked in the backend:
                # promote its successor immediately so the backend keeps
                # holding the lane's minimum (the dead head is purged
                # lazily like any other cancelled backend entry).
                handle[_LANE] = None
                self._promote_lane(lane)
            if (self._cancelled >= _AUTO_DRAIN_MIN_CANCELLED
                    and self._cancelled * 2 >= len(self)):
                self.drain_cancelled()

    def is_cancelled(self, handle: list) -> bool:
        """True if ``handle`` is spent: cancelled or already executed."""
        return handle[_CALLBACK] is None

    def drain_cancelled(self) -> int:
        """Eagerly remove every cancelled entry from the queues.

        Returns the number of entries removed.  ``run``/``step`` purge
        cancelled entries lazily when they reach the front; this
        compaction keeps the timer queues small when many timers are
        cancelled long before their deadline (retry timers, watchdogs).
        """
        # A full drain removes exactly the not-yet-purged cancellations,
        # which _cancelled tracks precisely.  (A length delta would be
        # wrong when called from a callback mid-run on the calendar
        # backend: the run loop keeps its cursor in a local, so len()
        # may still count already-dispatched entries of the current run.)
        removed = self._cancelled
        if self._cal_active:
            # The run loop re-reads _cur/_cur_idx every iteration, so
            # rebinding them mid-run (auto-drain from cancel()) is safe.
            self._cur = [entry for entry in self._cur[self._cur_idx:]
                         if entry[_CALLBACK] is not None]
            self._cur_idx = 0
            buckets = self._cal_buckets
            for index, bucket in enumerate(buckets):
                if bucket:
                    live = [entry for entry in bucket
                            if entry[_CALLBACK] is not None]
                    if len(live) != len(bucket):
                        buckets[index] = live
            self._cal_count = sum(len(bucket) for bucket in buckets)
        else:
            # Compact in place: the heap run loop holds direct references
            # to both containers, so they must never be rebound mid-run.
            self._queue[:] = [entry for entry in self._queue
                              if entry[_CALLBACK] is not None]
            heapify(self._queue)
        if self._ready:
            live = [entry for entry in self._ready
                    if entry[_CALLBACK] is not None]
            self._ready.clear()
            self._ready.extend(live)
        for delay in sorted(self._lane_map):
            pending = self._lane_map[delay][0]
            if pending:
                live = [entry for entry in pending
                        if entry[_CALLBACK] is not None]
                if len(live) != len(pending):
                    self._lane_count -= len(pending) - len(live)
                    pending.clear()
                    pending.extend(live)
        self._cancelled = 0
        return removed

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _purge_ready(self) -> None:
        """Drop cancelled entries from the front of the ready deque."""
        ready = self._ready
        while ready and ready[0][_CALLBACK] is None:
            ready.popleft()
            self._cancelled -= 1

    def peek(self) -> Optional[int]:
        """Return the timestamp of the next pending event, or ``None``."""
        self._purge_ready()
        if self._cal_active:
            entry = self._cal_next()
            if self._ready:
                return self._now
            return entry[_TIME] if entry is not None else None
        queue = self._queue
        while queue and queue[0][_CALLBACK] is None:
            heappop(queue)
            self._cancelled -= 1
        if self._ready:
            return self._now
        if queue:
            return queue[0][_TIME]
        return None

    def step(self) -> bool:
        """Execute the next scheduled callback.

        Returns ``True`` if a callback was executed, ``False`` if the
        queue was empty.
        """
        while True:
            self._purge_ready()
            if self._cal_active:
                entry = self._cal_next()
                if self._ready:
                    # Timer entries due now predate every ready entry
                    # (see module docstring) and so run first.
                    if entry is not None and entry[_TIME] <= self._now:
                        self._cur_idx += 1
                    else:
                        entry = self._ready.popleft()
                elif entry is not None:
                    self._cur_idx += 1
                else:
                    return False
            else:
                queue = self._queue
                while queue and queue[0][_CALLBACK] is None:
                    heappop(queue)
                    self._cancelled -= 1
                if self._ready:
                    if queue and queue[0][_TIME] <= self._now:
                        entry = heappop(queue)
                    else:
                        entry = self._ready.popleft()
                elif queue:
                    entry = heappop(queue)
                else:
                    return False
            callback = entry[_CALLBACK]
            if callback is None:
                self._cancelled -= 1
                continue
            if self._sanitize:
                self._san_check(entry, callback)
            # Mark the entry spent so a late cancel() is a no-op.
            entry[_CALLBACK] = None
            self._now = entry[_TIME]
            lane = entry[_LANE]
            if lane is not None:
                if lane[0]:
                    self._promote_lane(lane)
                else:
                    lane[1] = False
            self._event_count += 1
            if entry[_SINGLE]:
                callback(entry[_ARGS])
            else:
                callback(*entry[_ARGS])
            return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the event queue empties or a limit is reached.

        Parameters
        ----------
        until:
            Absolute time (ns) at which to stop.  Events scheduled at
            exactly ``until`` are still executed, and the clock always
            ends at ``max(until, now)`` -- it advances to the deadline
            even when the queue drains early, and never moves backwards
            for a deadline already in the past.
        max_events:
            Safety valve limiting the number of callbacks executed in
            this call; attempting to execute more raises
            :class:`SimulationError`.

        Returns
        -------
        int
            The simulated time when the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        if not self._cal_active and self._policy == "auto":
            self._maybe_adopt_calendar()
        self._running = True
        try:
            if self._sanitize:
                # Sanitized runs dispatch through peek()/step() so every
                # event passes the invariant checks; the fused loops
                # below stay untouched (and unchecked) for the zero-cost
                # disabled case.
                return self._run_sanitized(until, max_events)
            if self._cal_active:
                return self._run_calendar(until, max_events)
            return self._run_heap(until, max_events)
        finally:
            self._running = False

    def _run_sanitized(self, until: Optional[int],
                       max_events: Optional[int]) -> int:
        """Checked dispatch loop: same semantics as the fused loops.

        One ``peek()`` + ``step()`` pair per event instead of the fused
        single-pass dispatch -- slower (the sanitizer's documented
        overhead) but byte-identical in dispatch order, which the
        per-event ``_san_check`` asserts.
        """
        budget = -1 if max_events is None else max_events
        executed = 0
        while True:
            time = self.peek()
            if time is None or (until is not None and time > until):
                break
            if executed == budget:
                raise SimulationError(
                    f"exceeded max_events={max_events}; possible livelock")
            self.step()
            executed += 1
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _run_heap(self, until: Optional[int], max_events: Optional[int]) -> int:
        queue = self._queue
        ready = self._ready
        pop = heappop
        popleft = ready.popleft
        executed = 0
        # ``budget`` is the number of callbacks still allowed; negative
        # means unlimited.  Checked before each dispatch so the limit is
        # exact and the over-budget event stays queued.
        budget = -1 if max_events is None else max_events
        deadline = float("inf") if until is None else until
        now = self._now
        try:
            while now <= deadline:
                if ready:
                    # Heap entries due now predate the ready entries.
                    if queue and queue[0][_TIME] <= now:
                        if queue[0][_CALLBACK] is None:
                            pop(queue)
                            self._cancelled -= 1
                            continue
                        if executed == budget:
                            raise SimulationError(
                                f"exceeded max_events={max_events}; possible livelock"
                            )
                        entry = pop(queue)
                    else:
                        entry = popleft()
                        if entry[_CALLBACK] is None:
                            self._cancelled -= 1
                            continue
                        if executed == budget:
                            ready.appendleft(entry)
                            raise SimulationError(
                                f"exceeded max_events={max_events}; possible livelock"
                            )
                elif queue:
                    head = queue[0]
                    if head[_CALLBACK] is None:
                        pop(queue)
                        self._cancelled -= 1
                        continue
                    time = head[_TIME]
                    if time > deadline:
                        break
                    if executed == budget:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; possible livelock"
                        )
                    entry = pop(queue)
                    now = self._now = time
                else:
                    break
                executed += 1
                callback = entry[_CALLBACK]
                # Mark the entry spent so a late cancel() is a no-op.
                entry[_CALLBACK] = None
                lane = entry[_LANE]
                if lane is not None:
                    # Promote the lane's successor before running the
                    # callback so the backend holds the lane's minimum
                    # again by the time the loop next consults it (and
                    # even if the callback raises).  Empty lane: just
                    # disarm inline, skipping the call.
                    if lane[0]:
                        self._promote_lane(lane)
                    else:
                        lane[1] = False
                if entry[_SINGLE]:
                    callback(entry[_ARGS])
                else:
                    callback(*entry[_ARGS])
        finally:
            # Flushed on every exit path so events_processed is exact
            # even when a callback raises or the budget trips.
            self._event_count += executed
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _run_calendar(self, until: Optional[int], max_events: Optional[int]) -> int:
        ready = self._ready
        popleft = ready.popleft
        executed = 0
        budget = -1 if max_events is None else max_events
        # Integer sentinel far beyond any plausible simulated time keeps
        # the per-event deadline compare int-vs-int (a float("inf")
        # compare is measurably slower in the hot loop).
        deadline = (1 << 63) if until is None else until
        now = self._now
        # The run cursor lives in locals for the whole loop.  Callbacks
        # that insort into the run mutate the same list object (safe: the
        # insertion point is always at or after ``idx``, because pending
        # entries before it are strictly smaller), and the only rebinding
        # mutator -- drain_cancelled, via a callback's cancel() -- is
        # detected by the identity check after each dispatch.  Writing
        # ``self._cur_idx`` lazily is safe because its readers use it as
        # a bisect lo-hint (push), a slice start whose spent prefix
        # filters out anyway (drain), or an upper-bound count (__len__).
        cur = self._cur
        idx = self._cur_idx
        try:
            while now <= deadline:
                if ready:
                    # Timer entries due now predate the ready entries.
                    # Any entry due <= now lives in the current run (the
                    # push rule sends same-day entries there and _cal_day
                    # tracks the day of the clock), so checking the run
                    # suffices.
                    entry = None
                    if idx < len(cur):
                        head = cur[idx]
                        if head[_TIME] <= now:
                            if head[_CALLBACK] is None:
                                idx += 1
                                self._cancelled -= 1
                                continue
                            if executed == budget:
                                raise SimulationError(
                                    f"exceeded max_events={max_events}; "
                                    "possible livelock"
                                )
                            entry = head
                            idx += 1
                    if entry is None:
                        entry = ready[0]
                        if entry[_CALLBACK] is None:
                            popleft()
                            self._cancelled -= 1
                            continue
                        if executed == budget:
                            raise SimulationError(
                                f"exceeded max_events={max_events}; possible livelock"
                            )
                        popleft()
                else:
                    if idx >= len(cur):
                        self._cur_idx = idx
                        if not self._cal_advance():
                            break
                        cur = self._cur
                        idx = 0
                    # Inner batch: dispatch the run back to back while no
                    # ready entries appear.  The IndexError guard doubles
                    # as the bounds check (zero-cost try in 3.11); the
                    # run can grow mid-batch because callbacks insort
                    # into it (always at or after idx, so the cursor
                    # stays valid).
                    stop = False
                    while True:
                        try:
                            entry = cur[idx]
                        except IndexError:
                            break
                        callback = entry[_CALLBACK]
                        if callback is None:
                            idx += 1
                            self._cancelled -= 1
                            continue
                        time = entry[_TIME]
                        if time > deadline:
                            stop = True
                            break
                        if executed == budget:
                            raise SimulationError(
                                f"exceeded max_events={max_events}; possible livelock"
                            )
                        idx += 1
                        now = self._now = time
                        executed += 1
                        entry[_CALLBACK] = None
                        lane = entry[_LANE]
                        if lane is not None:
                            # Promoted successors insort into this same
                            # run (always at or after ``idx``) or park in
                            # a future bucket; either way the backend
                            # holds the lane's minimum again before the
                            # next dispatch.  Empty lane: disarm inline.
                            if lane[0]:
                                self._promote_lane(lane)
                            else:
                                lane[1] = False
                        if entry[_SINGLE]:
                            callback(entry[_ARGS])
                        else:
                            callback(*entry[_ARGS])
                        if cur is not self._cur:
                            # drain_cancelled rebound the run; our spent
                            # entries were filtered out of the fresh one.
                            cur = self._cur
                            idx = self._cur_idx
                        if ready:
                            break
                    if stop:
                        break
                    continue
                executed += 1
                callback = entry[_CALLBACK]
                entry[_CALLBACK] = None
                lane = entry[_LANE]
                if lane is not None:
                    if lane[0]:
                        self._promote_lane(lane)
                    else:
                        lane[1] = False
                if entry[_SINGLE]:
                    callback(entry[_ARGS])
                else:
                    callback(*entry[_ARGS])
                if cur is not self._cur:
                    # drain_cancelled rebound the run mid-dispatch; the
                    # entries we already spent were filtered out of the
                    # fresh run, so restart the cursor from its state.
                    cur = self._cur
                    idx = self._cur_idx
        finally:
            # Flushed on every exit path so events_processed and the
            # run cursor are exact even when a callback raises.
            self._event_count += executed
            if cur is self._cur:
                self._cur_idx = idx
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Run the simulation to completion with a livelock guard."""
        return self.run(max_events=max_events)


class _CSimulator(Simulator):
    """Compiled-core Simulator: same API, dispatch state in C.

    Constructed by the :class:`Simulator` factory (``__new__``) when
    core resolution picks ``"c"``; never instantiate directly.  The hot
    entry points (``schedule``/``call_after``/``run``/...) are *slot*
    names here: ``__init__`` stores the C engine's bound methods in the
    instance slots, which shadow the parent's Python methods, so both
    ``sim.call_after(...)`` and the components' cached
    ``self._call_after = sim.call_after`` bindings call straight into C
    with no Python trampoline frame.

    Semantics parity with the Python engine (asserted by the
    determinism and property suites):

    * identical total (time, seq) dispatch order, timer-before-ready
      rule included, so simulation results are byte-identical;
    * identical error types and messages (the ``SimulationError`` class
      is injected into the extension at construction);
    * identical lazy-cancellation accounting, ``drain_cancelled``
      return values, auto-drain thresholds, exact ``max_events``
      budgets and ``run(until=...)`` end-of-run clock behaviour;
    * ``scheduler``/``scheduler_policy`` report the same backend the
      Python engine would pick (the deterministic auto-adoption scan is
      mirrored), though the C core serves every backend from one packed
      (time, seq) heap -- the calendar queue and FIFO lanes are
      pure-Python *performance* structures with nothing left to buy at
      C speed (see ``_ccore.c``).

    Divergence, deliberate and loud: delays/times must be ints
    (``__index__``); the compiled core raises ``TypeError`` where the
    generic Python ``schedule()`` would silently truncate a float.
    Handles are opaque ints rather than list objects -- valid for
    :meth:`cancel`/:meth:`is_cancelled` exactly like the Python
    engine's entry lists, which callers already treat as opaque.
    """

    __slots__ = ("_eng", "schedule", "schedule_at", "call_soon",
                 "call_after", "cancel", "is_cancelled", "drain_cancelled",
                 "peek", "step", "run")

    def __init__(self, scheduler: str = "auto", calendar_bucket_ns: int = 128,
                 calendar_buckets: int = 8192,
                 sanitize: Optional[bool] = None,
                 core: Optional[str] = None) -> None:
        if scheduler not in ("auto", "heap", "calendar"):
            raise ValueError(f"unknown scheduler {scheduler!r} "
                             "(expected 'heap', 'calendar' or 'auto')")
        if calendar_bucket_ns <= 0 or calendar_bucket_ns & (calendar_bucket_ns - 1):
            raise ValueError("calendar_bucket_ns must be a positive power of two")
        if calendar_buckets <= 0 or calendar_buckets & (calendar_buckets - 1):
            raise ValueError("calendar_buckets must be a positive power of two")
        ccore = _CCORE_STATE["module"]
        if ccore is None:  # direct instantiation outside the factory
            ccore = _load_ccore(build=True)
            if ccore is None:
                raise SimulationError(
                    "compiled dispatch core unavailable: "
                    f"{_CCORE_STATE['error'] or 'import failed'}")
        policy_code = {"heap": 0, "calendar": 1, "auto": 2}[scheduler]
        eng = ccore.Engine(SimulationError, policy_code, calendar_bucket_ns,
                           1 if scheduler == "calendar" else 0)
        self._eng = eng
        self._policy = scheduler
        self._sanitize = False
        self.schedule = eng.schedule
        self.schedule_at = eng.schedule_at
        self.call_soon = eng.call_soon
        self.call_after = eng.call_after
        self.cancel = eng.cancel
        self.is_cancelled = eng.is_cancelled
        self.drain_cancelled = eng.drain_cancelled
        self.peek = eng.peek
        self.step = eng.step
        self.run = eng.run

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._eng.now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far (exact after run)."""
        return self._eng.events_processed

    @property
    def scheduler(self) -> str:
        """Timer backend currently reported (``"heap"`` or ``"calendar"``)."""
        return "calendar" if self._eng.calendar_active else "heap"

    @property
    def core(self) -> str:
        """Dispatch core in use."""
        return "c"

    def __len__(self) -> int:
        """Pending queue entries, including not-yet-purged cancellations."""
        return len(self._eng)
