"""Core discrete-event simulation loop.

The :class:`Simulator` owns the virtual clock and a priority queue of
scheduled callbacks.  Higher-level abstractions (processes, resources)
are built on top of :meth:`Simulator.schedule`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


class _ScheduledCall:
    """A single callback scheduled at a point in simulated time."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "_ScheduledCall") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class Simulator:
    """Event loop with an integer nanosecond clock.

    The simulator is single-threaded and deterministic: callbacks
    scheduled for the same timestamp run in scheduling order.
    """

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._queue: List[_ScheduledCall] = []
        self._running = False
        self._event_count = 0

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._event_count

    def schedule(self, delay: int, callback: Callable[..., None], *args: Any) -> _ScheduledCall:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + int(delay), callback, *args)

    def schedule_at(self, time: int, callback: Callable[..., None], *args: Any) -> _ScheduledCall:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        call = _ScheduledCall(int(time), self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, call)
        return call

    def cancel(self, call: _ScheduledCall) -> None:
        """Cancel a previously scheduled callback (lazy removal)."""
        call.cancelled = True

    def peek(self) -> Optional[int]:
        """Return the timestamp of the next pending event, or ``None``."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time

    def step(self) -> bool:
        """Execute the next scheduled callback.

        Returns ``True`` if a callback was executed, ``False`` if the
        queue was empty.
        """
        while self._queue:
            call = heapq.heappop(self._queue)
            if call.cancelled:
                continue
            self._now = call.time
            self._event_count += 1
            call.callback(*call.args)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the event queue empties or a limit is reached.

        Parameters
        ----------
        until:
            Absolute time (ns) at which to stop.  Events scheduled at
            exactly ``until`` are still executed, and the clock always
            ends at ``max(until, now)`` -- it advances to the deadline
            even when the queue drains early, and never moves backwards
            for a deadline already in the past.
        max_events:
            Safety valve limiting the number of callbacks executed in
            this call; attempting to execute more raises
            :class:`SimulationError`.

        Returns
        -------
        int
            The simulated time when the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        executed = 0
        try:
            while True:
                next_time = self.peek()
                if next_time is None or (until is not None and next_time > until):
                    if until is not None:
                        self._now = max(until, self._now)
                    break
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; possible livelock"
                    )
                if not self.step():
                    break
                executed += 1
        finally:
            self._running = False
        return self._now

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Run the simulation to completion with a livelock guard."""
        return self.run(max_events=max_events)
