"""Deterministic random-number helpers.

Every stochastic component in the library draws from a
:class:`DeterministicRNG` seeded explicitly, so a given experiment
configuration always produces the same result.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRNG:
    """Thin wrapper over :class:`random.Random` with domain helpers."""

    __slots__ = ("seed", "_random")

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, label: str) -> "DeterministicRNG":
        """Derive an independent child stream from this one.

        Forking by label keeps components decoupled: adding draws in one
        component does not perturb another component's stream.
        """
        child_seed = hash((self.seed, label)) & 0x7FFF_FFFF
        return DeterministicRNG(child_seed)

    def uniform_int(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return self._random.uniform(low, high)

    def choice(self, items: Sequence[T]) -> T:
        return self._random.choice(items)

    def shuffle(self, items: List[T]) -> None:
        self._random.shuffle(items)

    def bernoulli(self, probability: float) -> bool:
        """Return True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        return self._random.random() < probability

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean (for arrival gaps)."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return self._random.expovariate(1.0 / mean)

    def zipf_index(self, n: int, skew: float = 0.99) -> int:
        """Zipf-distributed index in ``[0, n)`` via inverse-CDF sampling.

        Used by key-value workloads to model skewed key popularity.
        """
        if n <= 0:
            raise ValueError(f"population must be positive, got {n}")
        if skew <= 0:
            return self.uniform_int(0, n - 1)
        # Rejection-free approximation (Gray et al. quick Zipf).
        u = self._random.random()
        return min(n - 1, int(n * (u ** (1.0 / (1.0 - skew + 1e-9))) ) % n)

    def sample_indices(self, population: int, count: int) -> List[int]:
        """Distinct uniform indices from ``range(population)``."""
        if count > population:
            raise ValueError("cannot sample more indices than the population size")
        return self._random.sample(range(population), count)
