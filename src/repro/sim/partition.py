"""Parallel per-leaf simulation with a conservative-lookahead barrier.

A fat-tree event fabric decomposes naturally: each leaf router plus its
compute nodes forms a partition whose components only interact with the
rest of the fabric through leaf<->spine links, and the spine routers
form one more partition.  Each partition gets its **own**
:class:`~repro.sim.engine.Simulator`; the partitions advance in
lock-step windows bounded by a *conservative lookahead*:

* **The cut.**  Every physical link and datalink -- including all of
  its credit, replay and receive-pipeline state -- is owned wholly by
  the partition of its *sending* switch.  The only interaction that
  crosses a partition boundary is the final hand-off of a clean,
  acknowledged packet into the receiving switch
  (:meth:`~repro.fabric.network.Switch.inject`), which in the
  monolithic fabric is a synchronous call that schedules the switch's
  ``_route`` one forwarding latency later.  Cross-partition datalinks
  therefore deliver into a :class:`BoundaryPort` that records
  ``(emit_time, port, emit_index, packet)`` instead of calling the
  foreign switch directly.

* **The lookahead.**  Let ``L`` be the minimum switch forwarding
  latency over the fabric (50 ns at Table-1 defaults).  A boundary
  emission at time ``t`` affects the receiving partition no earlier
  than ``t + L``.  With every partition clock aligned at a barrier and
  ``t_min`` the earliest pending event anywhere, every partition can
  safely run through the *horizon* ``H = t_min + L``: any emission in
  that window happens at ``t >= t_min``, so its effect lands at
  ``t + fwd >= t_min + L = H`` -- never inside the window that produced
  it.  ``Simulator.run(until=H)`` executes events at exactly ``H`` and
  parks the clock at ``H``, so all partitions leave each window
  aligned.

* **The barrier.**  Records collected from all partitions are sorted by
  the global key ``(emit_time, port_name, emit_index)`` and applied in
  that order: apply = bump the receiving switch's ``packets_switched``
  counter and ``schedule_at(emit_time + fwd_ns, switch._route,
  packet)`` on the receiver's simulator -- exactly the event the
  monolithic ``inject`` would have scheduled, at exactly the same
  simulated time, costing exactly the same one event.  An effect
  landing exactly **on** the horizon enters the receiver's ready deque
  (its clock is already at ``H``) and dispatches first thing in the
  next window, still at simulated time ``H``.

Because the apply order is a pure function of the records and the
per-partition simulators are deterministic, the merged execution is
reproducible: the sequential in-process executor
(:class:`PartitionedSim`) and the ``multiprocessing`` fork executor
(:func:`run_partitioned`) produce byte-identical merged stats dumps,
which the equivalence suite also pins against the single-simulator
fabric (see ``tests/sim/test_partition_equivalence.py``).

Ordering caveat (documented, by design): a cross-partition packet whose
effect ties to the nanosecond with an unrelated event of the receiving
partition may dispatch on the other side of that tie than the
monolithic interleaving chose.  Simulated *times* are always identical;
only same-instant tie order at the boundary is refined.  The
equivalence workloads stagger injections so no such tie occurs, and the
merged dumps are byte-identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.fabric.datalink import DataLink
from repro.fabric.network import Switch
from repro.fabric.packet import Packet, PacketKind
from repro.fabric.phy import PhysicalLink
from repro.fabric.topology import Topology, build_fat_tree, dimension_order_route
from repro.sim.engine import SimulationError, Simulator

__all__ = [
    "PartitionPlan", "plan_leaf_partitions", "BoundaryPort",
    "PartitionedFabric", "build_partitioned_fabric", "PartitionedSim",
    "PartitionedEventFabric",
    "ParallelFabricSpec", "build_spec_workload", "run_sequential_baseline",
    "run_partitioned", "canonical_dump",
]


# ----------------------------------------------------------------------
# Partition planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PartitionPlan:  # simlint: disable=SIM004 -- built once per run, never touched on the per-packet path
    """Assignment of topology nodes to partitions.

    ``partitions[pid]`` is the sorted tuple of node ids owned by
    partition ``pid``.  The plan is a pure function of the topology, so
    every process that builds it (inline runner, fork workers, the
    coordinating parent) derives identical ownership.
    """

    partitions: Tuple[Tuple[int, ...], ...]

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def node_partition(self) -> Dict[int, int]:
        """node id -> owning partition id."""
        owner: Dict[int, int] = {}
        for pid, nodes in enumerate(self.partitions):
            for node in nodes:
                owner[node] = pid
        return owner


def plan_leaf_partitions(topology: Topology) -> PartitionPlan:
    """Per-leaf partitioning: one partition per leaf router + one spine.

    A *leaf* is a router with at least one compute-node neighbour; its
    partition contains the leaf and its attached compute nodes.
    Routers without compute neighbours (the spines) share one final
    partition.  Topologies without routers (mesh, direct pair) fall
    back to a single partition -- the runner degenerates to the
    monolithic execution.
    """
    compute = set(topology.compute_nodes)
    leaves = [node for node in sorted(topology.router_nodes)
              if any(nbr in compute for nbr in topology.graph.neighbors(node))]
    spines = [node for node in sorted(topology.router_nodes)
              if node not in set(leaves)]
    if not leaves:
        return PartitionPlan(partitions=(tuple(topology.nodes),))
    assigned: Dict[int, int] = {}
    groups: List[List[int]] = []
    for leaf in leaves:
        pid = len(groups)
        members = [leaf]
        assigned[leaf] = pid
        for nbr in sorted(topology.graph.neighbors(leaf)):
            if nbr in compute and nbr not in assigned:
                members.append(nbr)
                assigned[nbr] = pid
        groups.append(sorted(members))
    leftovers = [node for node in topology.nodes
                 if node not in assigned and node not in set(spines)]
    if leftovers:
        # Compute nodes not under any leaf (irregular topologies) ride
        # with the first partition rather than failing the plan.
        groups[0] = sorted(groups[0] + leftovers)
    if spines:
        groups.append(sorted(spines))
    return PartitionPlan(partitions=tuple(tuple(g) for g in groups))


# ----------------------------------------------------------------------
# Partitioned fabric construction
# ----------------------------------------------------------------------
class BoundaryPort:
    """Cross-partition delivery sink standing in for ``Switch.inject``.

    Owned by the *sending* partition's datalink; appends boundary
    records instead of touching the foreign switch.  ``emit_index``
    restores per-port FIFO order inside the global barrier sort.
    """

    __slots__ = ("name", "dst_node", "sim", "records", "_emit_index")

    def __init__(self, name: str, dst_node: int, sim: Simulator) -> None:
        self.name = name
        self.dst_node = dst_node
        self.sim = sim
        self.records: List[Tuple[int, str, int, int, Packet]] = []
        self._emit_index = 0

    def __call__(self, packet: Packet) -> None:
        index = self._emit_index
        self._emit_index = index + 1
        self.records.append(
            (self.sim.now, self.name, index, self.dst_node, packet))

    def drain(self) -> List[Tuple[int, str, int, int, Packet]]:
        records, self.records = self.records, []
        return records


@dataclass
class PartitionedFabric:  # simlint: disable=SIM004 -- built once per run, never touched on the per-packet path
    """The event fabric split across per-partition simulators.

    Component dictionaries span the whole fabric (same keys and names
    as the monolithic ``EventFabric``); each component is bound to its
    owning partition's simulator.
    """

    sims: List[Simulator]
    switches: Dict[int, Switch]
    links: Dict[Tuple[int, int], PhysicalLink]
    datalinks: Dict[Tuple[int, int], DataLink]
    plan: PartitionPlan
    #: node id -> owning partition id (covers every switch).
    owner: Dict[int, int]
    boundary_ports: List[BoundaryPort]
    #: Conservative lookahead: min forwarding latency over all switches.
    lookahead_ns: int
    topology: Topology = field(repr=False, default=None)

    def apply_record(self, time: int, dst_node: int, packet: Packet) -> None:
        """Replay one boundary record on the receiving partition.

        Mirrors :meth:`Switch.inject` exactly -- counter bump plus one
        scheduled ``_route`` -- but anchored at the *emission* time, so
        the route dispatches at the same simulated instant the
        monolithic fabric would have used.
        """
        switch = self.switches[dst_node]
        switch._ctr_switched.value += 1
        switch.sim.schedule_at(time + switch._fwd_ns, switch._route, packet)


def build_partitioned_fabric(config, topology: Topology,
                             plan: Optional[PartitionPlan] = None,
                             scheduler: str = "auto",
                             sanitize: Optional[bool] = None,
                             ) -> PartitionedFabric:
    """Build the event fabric split over per-partition simulators.

    Mirrors ``VeniceSystem.build_event_fabric`` component for component
    (same names, port numbering and routing tables), except that each
    switch lives on its partition's simulator, each link/datalink pair
    lives on its *sender's* simulator, and cross-partition datalinks
    deliver into :class:`BoundaryPort` records instead of the foreign
    switch.  ``config`` is a ``FabricConfig`` (the ``fabric`` field of
    a ``VeniceConfig``).
    """
    plan = plan or plan_leaf_partitions(topology)
    owner = plan.node_partition()
    sims = [Simulator(scheduler=scheduler, sanitize=sanitize)
            for _ in range(plan.num_partitions)]
    base_switch = config.switch
    switches: Dict[int, Switch] = {}
    lookahead = None
    for node_id in topology.nodes:
        degree = topology.graph.degree(node_id)
        if degree + 1 > base_switch.radix:
            switch_config = replace(base_switch, radix=degree + 1)
        else:
            switch_config = base_switch
        switches[node_id] = Switch(sims[owner[node_id]], node_id,
                                   switch_config)
        fwd = switch_config.forwarding_latency_ns
        if lookahead is None or fwd < lookahead:
            lookahead = fwd
    if not lookahead or lookahead <= 0:
        raise SimulationError(
            "partitioned execution requires a positive switch forwarding "
            "latency (the conservative lookahead window)")
    links: Dict[Tuple[int, int], PhysicalLink] = {}
    datalinks: Dict[Tuple[int, int], DataLink] = {}
    boundary_ports: List[BoundaryPort] = []
    port_counters = {node_id: 1 for node_id in switches}  # port 0 = local
    for node_a, node_b in topology.links:
        for src, dst in ((node_a, node_b), (node_b, node_a)):
            sim = sims[owner[src]]
            link = PhysicalLink(sim, config.link, name=f"link{src}->{dst}")
            datalink = DataLink(sim, link, config.datalink,
                                name=f"dl{src}->{dst}")
            if owner[dst] == owner[src]:
                datalink.connect(switches[dst].inject)
            else:
                port_sink = BoundaryPort(f"dl{src}->{dst}", dst, sim)
                boundary_ports.append(port_sink)
                datalink.connect(port_sink)
            links[(src, dst)] = link
            datalinks[(src, dst)] = datalink
            port = port_counters[src]
            port_counters[src] += 1
            switches[src].attach_output(port, datalink)
            for destination in topology.compute_nodes:
                if destination == src:
                    continue
                route = dimension_order_route(topology, src, destination)
                if len(route) > 1 and route[1] == dst:
                    switches[src].routing_table.install(destination, port)
    return PartitionedFabric(sims=sims, switches=switches, links=links,
                             datalinks=datalinks, plan=plan, owner=owner,
                             boundary_ports=boundary_ports,
                             lookahead_ns=lookahead, topology=topology)


# ----------------------------------------------------------------------
# In-process executor (sequential round-robin; the determinism vehicle)
# ----------------------------------------------------------------------
class PartitionedSim:
    """Simulator facade driving all partitions in lookahead windows.

    Exposes the subset of the :class:`Simulator` API the event
    transport uses (``now``, ``call_after``, ``cancel``, ``run``,
    ``run_until_idle``, ``events_processed``, ``len``), so an
    ``EventTransport`` can run unmodified over a partitioned fabric.
    Between windows every partition clock is aligned; inside a window
    the facade delegates to the currently-running partition, so
    transport callbacks fired by deliveries schedule on the simulator
    whose clock is live.

    Scheduling between windows lands on partition 0 (the control
    partition) -- with aligned clocks any choice is timing-equivalent,
    and a fixed rule keeps runs reproducible.  Handles returned by
    ``call_after`` are ``(simulator, entry)`` pairs; treat them as
    opaque and pass them back to :meth:`cancel`.
    """

    __slots__ = ("fabric", "_sims", "_now", "_active", "_pending",
                 "_defer_index")

    def __init__(self, fabric: PartitionedFabric) -> None:
        self.fabric = fabric
        self._sims = fabric.sims
        self._now = 0
        self._active: Optional[int] = None
        #: Boundary + deferred-injection records awaiting the barrier.
        self._pending: List[Tuple[int, str, int, int, Packet]] = []
        self._defer_index = 0

    # -- facade ---------------------------------------------------------
    @property
    def now(self) -> int:
        if self._active is not None:
            return self._sims[self._active].now
        return self._now

    @property
    def events_processed(self) -> int:
        return sum(sim.events_processed for sim in self._sims)

    @property
    def sanitize(self) -> bool:
        return self._sims[0].sanitize

    @property
    def lookahead_ns(self) -> int:
        return self.fabric.lookahead_ns

    def __len__(self) -> int:
        return sum(len(sim) for sim in self._sims) + len(self._pending)

    def _current_sim(self) -> Simulator:
        if self._active is not None:
            return self._sims[self._active]
        return self._sims[0]

    def call_after(self, delay: int, callback: Callable[..., None],
                   value: Any = None):
        sim = self._current_sim()
        return (sim, sim.call_after(delay, callback, value))

    def schedule_at(self, time: int, callback: Callable[..., None], *args):
        sim = self._current_sim()
        return (sim, sim.schedule_at(time, callback, *args))

    def cancel(self, handle) -> None:
        sim, entry = handle
        sim.cancel(entry)

    def is_cancelled(self, handle) -> bool:
        sim, entry = handle
        return sim.is_cancelled(entry)

    # -- partition-aware injection (cross-traffic, transport sources) ---
    def inject(self, node_id: int, packet: Packet) -> None:
        """Inject at a switch, deferring foreign-partition injections.

        Between windows (clocks aligned) or from the switch's own
        partition this is a direct ``Switch.inject``.  From a *running*
        foreign partition the injection becomes a barrier record -- its
        ``_route`` still dispatches at ``emit_time + fwd_ns``, which the
        lookahead guarantees lies at or beyond the next barrier.
        """
        owner = self.fabric.owner[node_id]
        if self._active is None or self._active == owner:
            self.fabric.switches[node_id].inject(packet)
            return
        index = self._defer_index
        self._defer_index = index + 1
        self._pending.append(
            (self._sims[self._active].now, f"@inject{node_id}", index,
             node_id, packet))

    # -- barrier loop ---------------------------------------------------
    def _drain_ports(self) -> None:
        for port in self.fabric.boundary_ports:
            if port.records:
                self._pending.extend(port.drain())

    def _apply_pending(self) -> None:
        if not self._pending:
            return
        records, self._pending = self._pending, []
        records.sort(key=lambda record: record[:3])
        apply_record = self.fabric.apply_record
        for time, _key, _index, dst_node, packet in records:
            apply_record(time, dst_node, packet)

    def _peek_min(self) -> Optional[int]:
        t_min = None
        for sim in self._sims:
            time = sim.peek()
            if time is not None and (t_min is None or time < t_min):
                t_min = time
        return t_min

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Drive all partitions in lookahead windows (see module notes).

        Same contract as :meth:`Simulator.run`: events at exactly
        ``until`` execute, and every partition clock ends at
        ``max(until, now)``.  ``max_events`` bounds the *total* events
        executed across partitions; the bound is checked at barriers,
        so a window may complete before the excess is detected.
        """
        budget = None if max_events is None else \
            self.events_processed + max_events
        lookahead = self.fabric.lookahead_ns
        while True:
            self._drain_ports()
            self._apply_pending()
            t_min = self._peek_min()
            if t_min is None or (until is not None and t_min > until):
                break
            horizon = t_min + lookahead
            if until is not None and horizon > until:
                horizon = until
            for pid, sim in enumerate(self._sims):
                self._active = pid
                try:
                    sim.run(until=horizon)
                finally:
                    self._active = None
            self._now = horizon
            if budget is not None and self.events_processed > budget:
                raise SimulationError(
                    f"exceeded max_events={max_events}; possible livelock")
        if until is not None and until > self._now:
            for sim in self._sims:
                sim.run(until=until)
            self._now = until
        return self._now

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Run every partition to completion with a livelock guard."""
        return self.run(max_events=max_events)


class PartitionedEventFabric:
    """Drop-in ``EventFabric`` over a partitioned build.

    Quacks like :class:`repro.core.system.EventFabric` -- fabric-wide
    ``switches`` / ``links`` / ``datalinks`` dictionaries plus a ``sim``
    -- except that ``sim`` is a :class:`PartitionedSim` facade and
    ``inject`` is partition-aware, so an unmodified ``EventTransport``
    drives all partitions through the lookahead barrier loop.
    """

    __slots__ = ("partitioned", "sim", "switches", "links", "datalinks")

    def __init__(self, fabric: PartitionedFabric) -> None:
        self.partitioned = fabric
        self.sim = PartitionedSim(fabric)
        self.switches = fabric.switches
        self.links = fabric.links
        self.datalinks = fabric.datalinks

    def inject(self, node_id: int, packet: Packet) -> None:
        self.sim.inject(node_id, packet)


# ----------------------------------------------------------------------
# Spec-driven workloads and canonical merged dumps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParallelFabricSpec:  # simlint: disable=SIM004 -- built once per run, never touched on the per-packet path
    """Picklable description of a fat-tree fabric workload.

    Fork workers rebuild the whole partitioned fabric from this spec
    (Table-1 default link/switch parameters), so the parent never ships
    live simulators across process boundaries.  ``injections`` are
    ``(time_ns, src, dst, payload_bytes)`` one-way packets, delivered
    to each destination's local sink.
    """

    num_nodes: int
    leaf_radix: int = 4
    num_spines: int = 2
    scheduler: str = "auto"
    injections: Tuple[Tuple[int, int, int, int], ...] = ()
    #: ``(time_ns, src, dst, action)`` admin flaps on directed links;
    #: ``action`` is ``"down"`` or ``"up"``.  Scheduled on the link's
    #: own (sender-side) simulator, so fault timing is identical in the
    #: monolithic and partitioned builds.
    faults: Tuple[Tuple[int, int, int, str], ...] = ()

    def build_topology(self) -> Topology:
        return build_fat_tree(self.num_nodes, leaf_radix=self.leaf_radix,
                              num_spines=self.num_spines)


def _fabric_config():
    from repro.core.config import VeniceConfig
    return VeniceConfig().fabric


def build_spec_workload(spec: ParallelFabricSpec, switches: Dict[int, Switch],
                        links: Optional[Dict[Tuple[int, int],
                                             PhysicalLink]] = None,
                        ) -> List[Tuple[int, int, int, int]]:
    """Install a spec's injections, faults and delivery recorders.

    Injections and fault flaps are scheduled on each component's own
    simulator (monolithic and partitioned builds therefore cost
    identical events); every switch gets a local sink recording
    ``(arrival_time, src, dst, created_at)``.  Returns the live
    delivery list.
    """
    deliveries: List[Tuple[int, int, int, int]] = []
    for node_id in sorted(switches):
        switch = switches[node_id]

        def record(packet: Packet, _sim=switch.sim) -> None:
            deliveries.append(
                (_sim.now, packet.src, packet.dst, packet.created_at))

        switch.attach_local_sink(record)
    for time, src, dst, payload_bytes in spec.injections:
        switch = switches[src]
        packet = Packet(src=src, dst=dst, kind=PacketKind.QPAIR_DATA,
                        payload_bytes=payload_bytes, created_at=time)
        switch.sim.schedule_at(time, switch.inject, packet)
    if spec.faults:
        if links is None:
            raise ValueError("spec has faults but no links were provided")
        for time, src, dst, action in spec.faults:
            link = links[(src, dst)]
            flap = (link.set_admin_down if action == "down"
                    else link.set_admin_up)
            link.sim.schedule_at(time, flap)
    return deliveries


def _collect_counters(switches, links, datalinks,
                      keys: Optional[set] = None) -> Dict[str, Dict[str, int]]:
    counters: Dict[str, Dict[str, int]] = {}
    for node_id in sorted(switches):
        if keys is None or ("switch", node_id) in keys:
            stats = switches[node_id].stats
            counters[stats.name] = {
                name: counter.value
                for name, counter in sorted(stats.counters.items())}
    for collection, kind in ((links, "link"), (datalinks, "datalink")):
        for key in sorted(collection):
            if keys is None or (kind, key) in keys:
                stats = collection[key].stats
                counters[stats.name] = {
                    name: counter.value
                    for name, counter in sorted(stats.counters.items())}
    return counters


def _merged_dump(spec: ParallelFabricSpec, events: int,
                 deliveries: List[Tuple[int, int, int, int]],
                 counters: Dict[str, Dict[str, int]]) -> Dict[str, Any]:
    return {
        "workload": {
            "num_nodes": spec.num_nodes,
            "leaf_radix": spec.leaf_radix,
            "num_spines": spec.num_spines,
            "injections": len(spec.injections),
        },
        "events": events,
        "deliveries": sorted(deliveries),
        "counters": counters,
    }


def canonical_dump(dump: Dict[str, Any]) -> str:
    """Canonical JSON encoding for byte-identity comparisons."""
    return json.dumps(dump, sort_keys=True, separators=(",", ":"))


def run_sequential_baseline(spec: ParallelFabricSpec) -> Dict[str, Any]:
    """Run the spec on one monolithic simulator; return the merged dump."""
    from repro.core.config import VeniceConfig
    from repro.core.system import VeniceSystem

    config = VeniceConfig(num_nodes=spec.num_nodes, topology="fat_tree",
                          fat_tree_leaf_radix=spec.leaf_radix,
                          fat_tree_spines=spec.num_spines)
    system = VeniceSystem.build(config, scheduler=spec.scheduler)
    fabric = system.build_event_fabric(
        sim=Simulator(scheduler=spec.scheduler))
    deliveries = build_spec_workload(spec, fabric.switches, fabric.links)
    fabric.sim.run_until_idle()
    counters = _collect_counters(fabric.switches, fabric.links,
                                 fabric.datalinks)
    return _merged_dump(spec, fabric.sim.events_processed, deliveries,
                        counters)


def _run_inline(spec: ParallelFabricSpec) -> Dict[str, Any]:
    topology = spec.build_topology()
    fabric = build_partitioned_fabric(_fabric_config(), topology,
                                      scheduler=spec.scheduler)
    deliveries = build_spec_workload(spec, fabric.switches, fabric.links)
    runner = PartitionedSim(fabric)
    runner.run_until_idle()
    counters = _collect_counters(fabric.switches, fabric.links,
                                 fabric.datalinks)
    return _merged_dump(spec, runner.events_processed, deliveries, counters)


# ----------------------------------------------------------------------
# Fork executor: partitions on worker processes
# ----------------------------------------------------------------------
def _component_keys(fabric: PartitionedFabric, pids: set) -> set:
    keys = set()
    for node_id in sorted(fabric.owner):
        if fabric.owner[node_id] in pids:
            keys.add(("switch", node_id))
    for key in sorted(fabric.links):
        if fabric.owner[key[0]] in pids:
            keys.add(("link", key))
            keys.add(("datalink", key))
    return keys


def _worker_main(conn, spec: ParallelFabricSpec,
                 assigned: Tuple[int, ...]) -> None:
    """Fork-worker loop: build everything, run only assigned partitions.

    The build is a pure function of the spec, so every worker (and the
    inline runner) owns identical component state; a worker simply
    never advances the simulators of partitions it was not assigned.
    """
    topology = spec.build_topology()
    fabric = build_partitioned_fabric(_fabric_config(), topology,
                                      scheduler=spec.scheduler)
    deliveries = build_spec_workload(spec, fabric.switches, fabric.links)
    assigned_set = set(assigned)
    my_sims = [(pid, fabric.sims[pid]) for pid in assigned]
    my_ports = [port for pid in assigned for port in fabric.boundary_ports
                if fabric.sims[pid] is port.sim]
    try:
        while True:
            message = conn.recv()
            op = message[0]
            if op == "peek":
                conn.send([(pid, sim.peek()) for pid, sim in my_sims])
            elif op == "run":
                horizon = message[1]
                for _pid, sim in my_sims:
                    sim.run(until=horizon)
                records = []
                for port in my_ports:
                    records.extend(port.drain())
                conn.send(records)
            elif op == "apply":
                for time, _key, _index, dst_node, packet in message[1]:
                    fabric.apply_record(time, dst_node, packet)
                conn.send([(pid, sim.peek()) for pid, sim in my_sims])
            elif op == "finish":
                owned_nodes = {node for node in sorted(fabric.owner)
                               if fabric.owner[node] in assigned_set}
                my_deliveries = [record for record in deliveries
                                 if record[2] in owned_nodes]
                counters = _collect_counters(
                    fabric.switches, fabric.links, fabric.datalinks,
                    keys=_component_keys(fabric, assigned_set))
                events = sum(sim.events_processed for _pid, sim in my_sims)
                conn.send((events, my_deliveries, counters))
                return
            else:  # pragma: no cover - protocol error
                raise SimulationError(f"unknown worker op {op!r}")
    finally:
        conn.close()


def run_partitioned(spec: ParallelFabricSpec, workers: int = 1,
                    mode: str = "auto",
                    max_rounds: int = 1_000_000) -> Dict[str, Any]:
    """Run a spec over the partitioned fabric; return the merged dump.

    ``mode="inline"`` drives every partition sequentially in-process
    (the pure-python fallback -- byte-identical to fork mode and to the
    monolithic baseline, used by the determinism suites).
    ``mode="fork"`` spreads partitions round-robin over ``workers``
    processes coordinated through pipes.  ``mode="auto"`` picks fork
    when ``workers > 1`` and ``multiprocessing`` can fork, else inline.
    """
    if mode not in ("auto", "inline", "fork"):
        raise ValueError(f"unknown partition executor mode {mode!r}")
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    if mode == "auto":
        mode = "fork" if workers > 1 and _fork_available() else "inline"
    if mode == "inline":
        return _run_inline(spec)
    return _run_forked(spec, workers, max_rounds)


def _fork_available() -> bool:
    try:
        import multiprocessing
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - restricted environments
        return False


def _run_forked(spec: ParallelFabricSpec, workers: int,
                max_rounds: int) -> Dict[str, Any]:
    import multiprocessing

    context = multiprocessing.get_context("fork")
    topology = spec.build_topology()
    plan = plan_leaf_partitions(topology)
    owner = plan.node_partition()
    config = _fabric_config()
    lookahead = config.switch.forwarding_latency_ns
    workers = min(workers, plan.num_partitions)
    assignments: List[List[int]] = [[] for _ in range(workers)]
    for pid in range(plan.num_partitions):
        assignments[pid % workers].append(pid)
    pipes = []
    processes = []
    for worker_id in range(workers):
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=_worker_main,
            args=(child_conn, spec, tuple(assignments[worker_id])),
            daemon=True)
        process.start()
        child_conn.close()
        pipes.append(parent_conn)
        processes.append(process)
    try:
        pending: List[Tuple[int, str, int, int, Packet]] = []
        peeks: Optional[List[Optional[int]]] = None
        for _round in range(max_rounds):
            if peeks is None:
                for conn in pipes:
                    conn.send(("peek",))
                peeks = []
                for conn in pipes:
                    peeks.extend(time for _pid, time in conn.recv())
            live = [time for time in peeks if time is not None]
            if not live:
                break
            horizon = min(live) + lookahead
            for conn in pipes:
                conn.send(("run", horizon))
            pending = []
            for conn in pipes:
                pending.extend(conn.recv())
            pending.sort(key=lambda record: record[:3])
            batches: List[List] = [[] for _ in range(workers)]
            for record in pending:
                pid = owner[record[3]]
                batches[pid % workers].append(record)
            peeks = []
            for worker_id, conn in enumerate(pipes):
                conn.send(("apply", batches[worker_id]))
            for conn in pipes:
                peeks.extend(time for _pid, time in conn.recv())
        else:
            raise SimulationError(
                f"partitioned run exceeded {max_rounds} barrier rounds; "
                "possible livelock")
        events = 0
        deliveries: List[Tuple[int, int, int, int]] = []
        counters: Dict[str, Dict[str, int]] = {}
        for conn in pipes:
            conn.send(("finish",))
        for conn in pipes:
            worker_events, worker_deliveries, worker_counters = conn.recv()
            events += worker_events
            deliveries.extend(tuple(d) for d in worker_deliveries)
            counters.update(worker_counters)
        return _merged_dump(spec, events, deliveries, counters)
    finally:
        for conn in pipes:
            conn.close()
        for process in processes:
            process.join(timeout=30)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
