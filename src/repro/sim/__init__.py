"""Discrete-event simulation engine used by every Venice substrate.

The engine is deliberately small and dependency-free.  It provides:

* :class:`~repro.sim.engine.Simulator` -- the event loop and clock.
* generator-based *processes* (:mod:`repro.sim.process`) that model
  concurrent hardware/software activities and communicate through
  events, queues and resources.
* :mod:`repro.sim.resources` -- blocking queues, counting resources and
  credit pools used to model buffers, ports and flow control.
* :mod:`repro.sim.stats` -- counters, time-weighted gauges and
  histograms for collecting measurements during a run.
* :mod:`repro.sim.rng` -- deterministic random-number helpers so that
  every experiment is reproducible from a seed.

Time is kept as an integer number of **nanoseconds**.
"""

from repro.sim.engine import Simulator, SimulationError
from repro.sim.process import Process, Delay, WaitEvent, SimEvent, AllOf, AnyOf
from repro.sim.resources import Store, Resource, CreditPool
from repro.sim.stats import Counter, Gauge, Histogram, StatsRegistry
from repro.sim.rng import DeterministicRNG

__all__ = [
    "Simulator",
    "SimulationError",
    "Process",
    "Delay",
    "WaitEvent",
    "SimEvent",
    "AllOf",
    "AnyOf",
    "Store",
    "Resource",
    "CreditPool",
    "Counter",
    "Gauge",
    "Histogram",
    "StatsRegistry",
    "DeterministicRNG",
]
