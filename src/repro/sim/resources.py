"""Blocking resources built on top of the process/event model.

* :class:`Store`      -- bounded FIFO queue of items (models buffers,
  mailbox queues, packet queues).
* :class:`Resource`   -- counting resource with ``acquire``/``release``
  (models ports, DMA engines, accelerator slots).
* :class:`CreditPool` -- integer credit counter with blocking ``take``
  (models credit-based flow control at the datalink and QPair layers).

Each blocking operation returns a :class:`SimEvent`; a process waits by
yielding it.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import SanitizerError, SimulationError, Simulator
from repro.sim.process import SimEvent


class Store:
    """Bounded FIFO of items with blocking put/get semantics."""

    __slots__ = ("sim", "name", "capacity", "_items", "_getters", "_putters",
                 "_put_name", "_get_name")

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = "store"):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimEvent] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)
        # Event names are hoisted out of put()/get(): building one
        # f-string per packet shows up in fabric hot-path profiles.
        self._put_name = name + ".put"
        self._get_name = name + ".get"

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> SimEvent:
        """Enqueue ``item``; the returned event triggers once accepted.

        The immediate-acceptance paths mark the fresh event succeeded in
        place: it cannot have waiters yet, so this equals ``succeed(None)``
        without the call overhead (this is the per-packet fast path).
        """
        event = SimEvent(self.sim, name=self._put_name)
        if self._getters:
            self._getters.popleft().succeed(item)
            event._succeeded = True
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event._succeeded = True
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.is_full:
            return False
        self._items.append(item)
        return True

    def get(self) -> SimEvent:
        """Dequeue an item; the returned event triggers with the item."""
        event = SimEvent(self.sim, name=self._get_name)
        if self._items:
            # Fresh event, no waiters possible: succeed in place.
            event._value = self._items.popleft()
            event._succeeded = True
            if self._putters:
                self._admit_waiting_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple:
        """Non-blocking get; returns ``(ok, item)``."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        self._admit_waiting_putter()
        return True, item

    def _admit_waiting_putter(self) -> None:
        if self._putters and not self.is_full:
            event, item = self._putters.popleft()
            self._items.append(item)
            event.succeed(None)


class Resource:
    """Counting resource (capacity N) with FIFO acquisition order."""

    __slots__ = ("sim", "name", "capacity", "_in_use", "_waiters",
                 "_acquire_name")

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[SimEvent] = deque()
        self._acquire_name = name + ".acquire"

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def acquire(self) -> SimEvent:
        """Request a unit; the returned event fires once granted."""
        event = SimEvent(self.sim, name=self._acquire_name)
        if self._in_use < self.capacity:
            self._in_use += 1
            # Fresh event, no waiters possible: succeed in place.
            event._succeeded = True
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a unit, granting it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release on idle resource {self.name!r}")
        if self._waiters:
            # Hand the unit directly to the next waiter.
            self._waiters.popleft().succeed(None)
        else:
            self._in_use -= 1


class CreditPool:
    """Integer credit counter used for credit-based flow control.

    Senders ``take(n)`` credits (blocking until available) before
    transmitting; receivers ``replenish(n)`` when buffers drain.

    When the owning simulator sanitizes, every pool operation entry
    point re-checks the conservation invariant
    (:meth:`check_conservation`), so a buggy replenish path that
    silently destroys or mints credits is caught at the next pool
    operation even if the buggy code itself performs no checks.
    """

    __slots__ = ("sim", "name", "maximum", "_take_name", "_credits",
                 "_waiters", "_pending_replenish", "total_taken",
                 "total_replenished", "stall_count", "flush_count",
                 "_initial", "_clamped", "_sanitize")

    def __init__(self, sim: Simulator, initial: int, maximum: Optional[int] = None,
                 name: str = "credits"):
        if initial < 0:
            raise ValueError(f"initial credits must be non-negative, got {initial}")
        if maximum is not None and maximum < initial:
            raise ValueError("maximum credits below initial credits")
        self.sim = sim
        self.name = name
        self.maximum = maximum if maximum is not None else initial
        self._take_name = name + ".take"
        self._credits = initial
        self._waiters: Deque[tuple] = deque()  # (event, amount)
        #: Credits accrued towards the next coalesced flush (see
        #: :meth:`schedule_replenish`).
        self._pending_replenish = 0
        self.total_taken = 0
        self.total_replenished = 0
        self.stall_count = 0
        self.flush_count = 0
        self._initial = initial
        #: Credits legitimately discarded by the post-grant clamp; part
        #: of the conservation ledger so clamped returns are
        #: distinguishable from silently destroyed credits.
        self._clamped = 0
        self._sanitize = bool(getattr(sim, "sanitize", False))

    @property
    def available(self) -> int:
        return self._credits

    def take(self, amount: int = 1) -> SimEvent:
        """Consume ``amount`` credits; blocks (via event) until granted."""
        if amount <= 0:
            raise ValueError(f"credit amount must be positive, got {amount}")
        if amount > self.maximum:
            raise SimulationError(
                f"requesting {amount} credits exceeds pool maximum {self.maximum}"
            )
        if self._sanitize:
            self.check_conservation()
        event = SimEvent(self.sim, name=self._take_name)
        if not self._waiters and self._credits >= amount:
            self._credits -= amount
            self.total_taken += amount
            # Fresh event, no waiters possible: succeed in place.
            event._succeeded = True
        else:
            self.stall_count += 1
            self._waiters.append((event, amount))
        return event

    def try_take(self, amount: int = 1) -> bool:
        """Non-blocking take; returns ``False`` if short on credits."""
        if self._sanitize:
            self.check_conservation()
        if self._waiters or self._credits < amount:
            return False
        self._credits -= amount
        self.total_taken += amount
        return True

    def replenish(self, amount: int = 1) -> None:
        """Return ``amount`` credits and grant any now-satisfiable waiters.

        Waiters are granted before the pool is clamped to ``maximum``:
        credits owed to blocked senders must never be destroyed by the
        clamp.
        """
        if amount <= 0:
            raise ValueError(f"replenish amount must be positive, got {amount}")
        self._credits += amount
        self.total_replenished += amount
        while self._waiters and self._credits >= self._waiters[0][1]:
            event, want = self._waiters.popleft()
            self._credits -= want
            self.total_taken += want
            event.succeed(None)
        if self._credits > self.maximum:
            if self._sanitize and self._waiters:
                raise SanitizerError(
                    f"credit pool {self.name!r}: clamping "
                    f"{self._credits - self.maximum} credits while "
                    f"{len(self._waiters)} taker(s) are still blocked "
                    "(waiters must be granted before the clamp)")
            self._clamped += self._credits - self.maximum
            self._credits = self.maximum
        if self._sanitize:
            self.check_conservation()

    def schedule_replenish(self, amount: int = 1, delay: int = 0) -> None:
        """Return ``amount`` credits ``delay`` ns from now, coalesced.

        Batched credit return: the first pending credit arms a single
        flush event ``delay`` ns out, and credits accrued before it
        fires ride along in the same wakeup pass -- N returns coalesce
        into one :meth:`replenish` (and therefore one waiter-granting
        sweep) instead of N events.  The window is anchored at the
        *first* credit's deadline: the ``delay`` of later calls in the
        window is ignored, so with a constant per-caller delay (the
        datalink's fixed return latency) coalesced credits return at or
        before their own deadline, while mixed delays may return a
        credit earlier or later than its own ``delay`` would.  Receivers
        only return credits for buffer slots that have already drained,
        so an early return cannot overflow.

        Flush-on-idle guarantee: arming is unconditional -- pending
        credits always have a scheduled flush event, so the batch can
        never be stranded and no waiter is left blocked when the
        simulation quiesces.
        """
        if amount <= 0:
            raise ValueError(f"replenish amount must be positive, got {amount}")
        if self._pending_replenish:
            self._pending_replenish += amount
            return
        self._pending_replenish = amount
        self.sim.call_after(delay, self._flush_replenish)

    def _flush_replenish(self, _value=None) -> None:
        if self._sanitize:
            self.check_conservation()
        amount = self._pending_replenish
        self._pending_replenish = 0
        self.flush_count += 1
        self.replenish(amount)

    def check_conservation(self) -> None:
        """Assert the credit-conservation invariant of this pool.

        ``initial + replenished - taken - clamped`` must equal the
        credits currently available, which must lie in
        ``[0, maximum]``.  A mismatch means some code path destroyed or
        minted credits without going through the ledger -- the shape of
        the historical replenish bug that clamped to ``maximum`` before
        granting blocked waiters.
        """
        expected = (self._initial + self.total_replenished
                    - self.total_taken - self._clamped)
        if expected != self._credits:
            raise SanitizerError(
                f"credit pool {self.name!r} conservation violated: "
                f"initial={self._initial} + "
                f"replenished={self.total_replenished} - "
                f"taken={self.total_taken} - clamped={self._clamped} "
                f"= {expected}, but {self._credits} credits are available")
        if not 0 <= self._credits <= self.maximum:
            raise SanitizerError(
                f"credit pool {self.name!r} holds {self._credits} credits, "
                f"outside [0, {self.maximum}]")

    @property
    def pending_replenish(self) -> int:
        """Credits accrued towards the next coalesced flush."""
        return self._pending_replenish

    def pending_waiters(self) -> int:
        return len(self._waiters)
