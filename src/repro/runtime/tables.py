"""Monitor-node tables: RRT, RAT and TST (Section 5.3).

These are functional data structures -- the runtime layer in the paper
is software, so no timing model is attached beyond what the Monitor
Node itself charges for request handling.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class ResourceKind(enum.Enum):
    """Types of shareable resources tracked by the runtime."""

    MEMORY = "memory"
    ACCELERATOR = "accelerator"
    NIC = "nic"


@dataclass
class ResourceRecord:
    """One RRT row: a resource (or pool thereof) available on a node."""

    node_id: int
    kind: ResourceKind
    #: Bytes for memory, unit count for accelerators/NICs.
    capacity: int
    #: Currently unallocated amount.
    available: int
    #: Free-form capability description (e.g. accelerator kernel type).
    capabilities: str = ""
    #: Simulated time of the last heartbeat that refreshed this record.
    last_heartbeat_ns: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 0 or self.available < 0:
            raise ValueError("capacity and availability must be non-negative")
        if self.available > self.capacity:
            raise ValueError("availability cannot exceed capacity")


class ResourceRegistrationTable:
    """RRT: available resources in the rack, keyed by (node, kind)."""

    def __init__(self) -> None:
        self._records: Dict[Tuple[int, ResourceKind], ResourceRecord] = {}  # simlint: disable=SIM006 -- bounded by nodes x resource kinds
        # Per-kind key order, rebuilt only when a *new* (node, kind) key
        # appears.  Heartbeats refresh existing keys in place, so the
        # planner's per-request records_of_kind() calls skip the full
        # sort that used to dominate the sharded-MN hot path.
        self._kind_keys: Optional[Dict[ResourceKind, List[Tuple[int, ResourceKind]]]] = None  # simlint: disable=SIM006 -- bounded by nodes x resource kinds
        # Bumped on every register() (insert *or* replace).  Hot paths
        # that cache record objects (the Monitor Node's fused heartbeat)
        # key their cache on this, so a replaced record is never
        # refreshed through a stale reference.
        self.version = 0

    def register(self, record: ResourceRecord) -> None:
        """Insert or refresh the record for (node, kind)."""
        key = (record.node_id, record.kind)
        if key not in self._records:
            self._kind_keys = None
        self._records[key] = record
        self.version += 1

    def get(self, node_id: int, kind: ResourceKind) -> Optional[ResourceRecord]:
        return self._records.get((node_id, kind))

    @property
    def rows(self) -> Dict[Tuple[int, ResourceKind], ResourceRecord]:
        """The live (node, kind) -> record mapping, for read-mostly hot
        paths that want one ``dict.get`` per probe.  Callers must not
        add or remove keys directly -- inserting through anything but
        :meth:`register` would bypass the per-kind order cache."""
        return self._records

    def records_of_kind(self, kind: ResourceKind) -> List[ResourceRecord]:
        # Sorted by node id: this list seeds the donor-candidate order,
        # so ties in the selection policy must not be broken by the
        # registration history baked into dict insertion order.
        if self._kind_keys is None:
            self._kind_keys = {}
            for key in sorted(self._records, key=lambda k: (k[0], k[1].value)):
                self._kind_keys.setdefault(key[1], []).append(key)
        records = self._records
        return [records[key] for key in self._kind_keys.get(kind, ())]

    def total_available(self, kind: ResourceKind) -> int:
        return sum(record.available for record in self.records_of_kind(kind))

    def nodes(self) -> List[int]:
        return sorted({node_id for node_id, _ in self._records})

    def stale_nodes(self, now_ns: int, timeout_ns: int) -> List[int]:
        """Nodes whose newest heartbeat is older than ``timeout_ns``."""
        newest: Dict[int, int] = {}
        for (node_id, _), record in self._records.items():  # simlint: disable=SIM001 -- max() fold is order-insensitive
            newest[node_id] = max(newest.get(node_id, 0), record.last_heartbeat_ns)
        return sorted(node for node, beat in newest.items()
                      if now_ns - beat > timeout_ns)


_allocation_ids = itertools.count(1)


@dataclass
class AllocationRecord:
    """One RAT row: an active allocation of a resource to a requester."""

    requester: int
    donor: int
    kind: ResourceKind
    amount: int
    allocation_id: int = field(default_factory=lambda: next(_allocation_ids))
    created_at_ns: int = 0
    released: bool = False

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise ValueError("allocation amount must be positive")


class ResourceAllocationTable:
    """RAT: every allocation the Monitor Node has granted."""

    def __init__(self) -> None:
        self._records: List[AllocationRecord] = []
        # Insertion-ordered id -> record view of the not-yet-released
        # records.  `released` is only ever flipped by release(), so the
        # dict mirrors the filtered-list order exactly while making
        # release() O(1) instead of a scan over every allocation the
        # table has ever granted (the sharded-MN release hot path).
        self._active_by_id: Dict[int, AllocationRecord] = {}  # simlint: disable=SIM006 -- bounded by concurrently active allocations

    def add(self, record: AllocationRecord) -> AllocationRecord:
        self._records.append(record)
        # Allocation ids come from a process-wide counter, so collisions
        # cannot happen; setdefault keeps first-match release semantics
        # anyway should a caller ever hand-craft a duplicate id.
        self._active_by_id.setdefault(record.allocation_id, record)
        return record

    def release(self, allocation_id: int) -> AllocationRecord:
        record = self._active_by_id.pop(allocation_id, None)
        if record is None:
            raise KeyError(f"no active allocation with id {allocation_id}")
        record.released = True
        return record

    def active(self) -> List[AllocationRecord]:
        return list(self._active_by_id.values())

    def active_for_requester(self, requester: int) -> List[AllocationRecord]:
        return [record for record in self.active() if record.requester == requester]

    def active_for_donor(self, donor: int) -> List[AllocationRecord]:
        return [record for record in self.active() if record.donor == donor]

    def allocated_amount(self, donor: int, kind: ResourceKind) -> int:
        return sum(record.amount for record in self.active()
                   if record.donor == donor and record.kind == kind)


class LinkStatus(enum.Enum):
    """Health of one fabric link as reported by the node agents."""

    UP = "up"
    DEGRADED = "degraded"
    DOWN = "down"


class TopologyStatusTable:
    """TST: per-link status, keyed by the unordered node pair."""

    def __init__(self) -> None:
        self._status: Dict[Tuple[int, int], LinkStatus] = {}  # simlint: disable=SIM006 -- bounded by the topology's link count
        self._reported_at: Dict[Tuple[int, int], int] = {}  # simlint: disable=SIM006 -- bounded by the topology's link count

    @staticmethod
    def _key(node_a: int, node_b: int) -> Tuple[int, int]:
        return (node_a, node_b) if node_a <= node_b else (node_b, node_a)

    def report(self, node_a: int, node_b: int, status: LinkStatus,
               now_ns: int = 0) -> None:
        key = self._key(node_a, node_b)
        self._status[key] = status
        self._reported_at[key] = now_ns

    def status(self, node_a: int, node_b: int) -> LinkStatus:
        return self._status.get(self._key(node_a, node_b), LinkStatus.DOWN)

    def reported_status(self, node_a: int, node_b: int) -> Optional[LinkStatus]:
        """The reported status, or None when nobody reported this link.

        One lookup replaces the ``status()``-plus-known-links pattern --
        path checks that must ignore unreported links used to rebuild a
        set of every known link per query.
        """
        return self._status.get(self._key(node_a, node_b))

    def is_usable(self, node_a: int, node_b: int) -> bool:
        return self.status(node_a, node_b) in (LinkStatus.UP, LinkStatus.DEGRADED)

    def links(self) -> List[Tuple[int, int, LinkStatus]]:
        return [(a, b, status) for (a, b), status in sorted(self._status.items())]
