"""Monitor-node tables: RRT, RAT and TST (Section 5.3).

These are functional data structures -- the runtime layer in the paper
is software, so no timing model is attached beyond what the Monitor
Node itself charges for request handling.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class ResourceKind(enum.Enum):
    """Types of shareable resources tracked by the runtime."""

    MEMORY = "memory"
    ACCELERATOR = "accelerator"
    NIC = "nic"


@dataclass
class ResourceRecord:
    """One RRT row: a resource (or pool thereof) available on a node."""

    node_id: int
    kind: ResourceKind
    #: Bytes for memory, unit count for accelerators/NICs.
    capacity: int
    #: Currently unallocated amount.
    available: int
    #: Free-form capability description (e.g. accelerator kernel type).
    capabilities: str = ""
    #: Simulated time of the last heartbeat that refreshed this record.
    last_heartbeat_ns: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 0 or self.available < 0:
            raise ValueError("capacity and availability must be non-negative")
        if self.available > self.capacity:
            raise ValueError("availability cannot exceed capacity")


class ResourceRegistrationTable:
    """RRT: available resources in the rack, keyed by (node, kind)."""

    def __init__(self) -> None:
        self._records: Dict[Tuple[int, ResourceKind], ResourceRecord] = {}  # simlint: disable=SIM006 -- bounded by nodes x resource kinds

    def register(self, record: ResourceRecord) -> None:
        """Insert or refresh the record for (node, kind)."""
        self._records[(record.node_id, record.kind)] = record

    def get(self, node_id: int, kind: ResourceKind) -> Optional[ResourceRecord]:
        return self._records.get((node_id, kind))

    def records_of_kind(self, kind: ResourceKind) -> List[ResourceRecord]:
        # Sorted by node id: this list seeds the donor-candidate order,
        # so ties in the selection policy must not be broken by the
        # registration history baked into dict insertion order.
        return [self._records[key] for key in
                sorted(self._records, key=lambda k: (k[0], k[1].value))
                if key[1] == kind]

    def total_available(self, kind: ResourceKind) -> int:
        return sum(record.available for record in self.records_of_kind(kind))

    def nodes(self) -> List[int]:
        return sorted({node_id for node_id, _ in self._records})

    def stale_nodes(self, now_ns: int, timeout_ns: int) -> List[int]:
        """Nodes whose newest heartbeat is older than ``timeout_ns``."""
        newest: Dict[int, int] = {}
        for (node_id, _), record in self._records.items():  # simlint: disable=SIM001 -- max() fold is order-insensitive
            newest[node_id] = max(newest.get(node_id, 0), record.last_heartbeat_ns)
        return sorted(node for node, beat in newest.items()
                      if now_ns - beat > timeout_ns)


_allocation_ids = itertools.count(1)


@dataclass
class AllocationRecord:
    """One RAT row: an active allocation of a resource to a requester."""

    requester: int
    donor: int
    kind: ResourceKind
    amount: int
    allocation_id: int = field(default_factory=lambda: next(_allocation_ids))
    created_at_ns: int = 0
    released: bool = False

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise ValueError("allocation amount must be positive")


class ResourceAllocationTable:
    """RAT: every allocation the Monitor Node has granted."""

    def __init__(self) -> None:
        self._records: List[AllocationRecord] = []

    def add(self, record: AllocationRecord) -> AllocationRecord:
        self._records.append(record)
        return record

    def release(self, allocation_id: int) -> AllocationRecord:
        for record in self._records:
            if record.allocation_id == allocation_id and not record.released:
                record.released = True
                return record
        raise KeyError(f"no active allocation with id {allocation_id}")

    def active(self) -> List[AllocationRecord]:
        return [record for record in self._records if not record.released]

    def active_for_requester(self, requester: int) -> List[AllocationRecord]:
        return [record for record in self.active() if record.requester == requester]

    def active_for_donor(self, donor: int) -> List[AllocationRecord]:
        return [record for record in self.active() if record.donor == donor]

    def allocated_amount(self, donor: int, kind: ResourceKind) -> int:
        return sum(record.amount for record in self.active()
                   if record.donor == donor and record.kind == kind)


class LinkStatus(enum.Enum):
    """Health of one fabric link as reported by the node agents."""

    UP = "up"
    DEGRADED = "degraded"
    DOWN = "down"


class TopologyStatusTable:
    """TST: per-link status, keyed by the unordered node pair."""

    def __init__(self) -> None:
        self._status: Dict[Tuple[int, int], LinkStatus] = {}  # simlint: disable=SIM006 -- bounded by the topology's link count
        self._reported_at: Dict[Tuple[int, int], int] = {}  # simlint: disable=SIM006 -- bounded by the topology's link count

    @staticmethod
    def _key(node_a: int, node_b: int) -> Tuple[int, int]:
        return (node_a, node_b) if node_a <= node_b else (node_b, node_a)

    def report(self, node_a: int, node_b: int, status: LinkStatus,
               now_ns: int = 0) -> None:
        key = self._key(node_a, node_b)
        self._status[key] = status
        self._reported_at[key] = now_ns

    def status(self, node_a: int, node_b: int) -> LinkStatus:
        return self._status.get(self._key(node_a, node_b), LinkStatus.DOWN)

    def is_usable(self, node_a: int, node_b: int) -> bool:
        return self.status(node_a, node_b) in (LinkStatus.UP, LinkStatus.DEGRADED)

    def links(self) -> List[Tuple[int, int, LinkStatus]]:
        return [(a, b, status) for (a, b), status in sorted(self._status.items())]
