"""Churn engine: deterministic fault campaigns on the event fabric.

The paper's fault-containment story names heartbeats and the Topology
Status Table as the ingredients; everything in :mod:`repro.runtime.fault`
so far has only ever been exercised as a synchronous table
recomputation.  The :class:`ChurnEngine` closes that gap: it schedules
LINK_DOWN/LINK_UP flaps, router failures and donor-node crashes as
*simulator events*, so faults land mid-flight -- packets on a downed
link corrupt and feed the datalink replay path, packets crossing a
failed router black-hole and trip transport deadlines -- while a
heartbeat pump drives :meth:`MonitorNode.collect_heartbeats` /
:meth:`FaultHandler.check_heartbeats` from the *simulated* clock, so
failure detection latency is measured, not assumed.

Campaigns are generated deterministically from a
:class:`~repro.sim.rng.DeterministicRNG` seed over *sorted* candidate
lists, so a fixed ``(topology, seed)`` pair always produces the same
fault sequence -- byte-identical stats across runs and across timer
backends.  (Child streams are derived by seed arithmetic, never by
string hashing, so determinism holds across processes too.)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.runtime.fault import FaultHandler, RecoveryPlan
from repro.runtime.tables import LinkStatus
from repro.sim.rng import DeterministicRNG


class FaultKind(enum.Enum):
    """Fault classes a campaign can inject."""

    LINK_FLAP = "link_flap"
    ROUTER_FAIL = "router_fail"
    NODE_CRASH = "node_crash"
    #: A Monitor-Node shard primary crashes; the heartbeat pump promotes
    #: its standby and the healed host rejoins as the new standby.
    MN_CRASH = "mn_crash"


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled fault: applied at ``at_ns``, healed after ``duration_ns``."""

    at_ns: int
    kind: FaultKind
    #: ``(node_a, node_b)`` for link flaps, ``(node,)`` otherwise.
    target: Tuple[int, ...]
    duration_ns: int
    #: Campaign-order tie-break for coincident events.
    index: int


@dataclass
class ChurnConfig:
    """Shape of one fault campaign."""

    seed: int = 1
    #: Window (from engine start, in simulated ns) fault *injections*
    #: are drawn from; every fault also heals within the window plus
    #: its duration.
    horizon_ns: int = 30_000_000
    link_flaps: int = 2
    router_failures: int = 1
    node_crashes: int = 1
    #: Monitor-shard primary crashes (needs a sharded monitor; plain
    #: MonitorNode targets simply get none scheduled).
    mn_crashes: int = 0
    #: How long a flapped link stays admin-down.
    flap_duration_ns: int = 500_000
    #: How long a failed router stays down.
    router_down_ns: int = 800_000
    #: How long a crashed node stays down before rejoining.
    crash_down_ns: int = 4_000_000
    #: How long a crashed shard primary's host stays down before it
    #: rejoins as the shard's new standby (promotion happens earlier,
    #: at the first heartbeat pump after the crash).
    mn_crash_down_ns: int = 2_000_000
    #: Heartbeat pump period on the simulated clock.
    heartbeat_period_ns: int = 200_000
    #: Monitor heartbeat timeout while the engine runs (installed on
    #: start): a crash is detectable after this much silence.
    heartbeat_timeout_ns: int = 700_000

    def __post_init__(self) -> None:
        if self.horizon_ns <= 0:
            raise ValueError("campaign horizon must be positive")
        if min(self.link_flaps, self.router_failures, self.node_crashes,
               self.mn_crashes) < 0:
            raise ValueError("fault counts must be non-negative")
        if min(self.flap_duration_ns, self.router_down_ns,
               self.crash_down_ns, self.mn_crash_down_ns) <= 0:
            raise ValueError("fault durations must be positive")
        if self.heartbeat_period_ns <= 0:
            raise ValueError("heartbeat period must be positive")
        if self.heartbeat_timeout_ns <= self.heartbeat_period_ns:
            raise ValueError(
                "heartbeat timeout must exceed the pump period, or every "
                "node looks dead between consecutive pumps")


def generate_campaign(config: ChurnConfig, topology,
                      shard_ids: Optional[List[int]] = None) -> List[ChurnEvent]:
    """Deterministic fault schedule for ``topology`` from ``config.seed``.

    Candidates are drawn from sorted lists (links for flaps, router
    nodes for router failures, compute nodes for crashes, ``shard_ids``
    for monitor-shard crashes) with one derived RNG stream per fault
    class, so adding faults of one kind never perturbs another kind's
    draws.  Topologies without routers simply get no router failures,
    and ``mn_crashes`` are only scheduled when the target monitor is
    sharded (``shard_ids`` given).  Events are returned sorted by
    ``(at_ns, index)``.
    """
    events: List[ChurnEvent] = []
    index = 0

    def _times(rng: DeterministicRNG, count: int, duration: int) -> List[int]:
        upper = max(1, config.horizon_ns - duration)
        return [rng.uniform_int(1, upper) for _ in range(count)]

    flap_rng = DeterministicRNG(config.seed * 1_000_003 + 1)
    links = topology.links  # already sorted unordered pairs
    if links:
        for at in _times(flap_rng, config.link_flaps,
                         config.flap_duration_ns):
            target = flap_rng.choice(links)
            events.append(ChurnEvent(at_ns=at, kind=FaultKind.LINK_FLAP,
                                     target=tuple(target),
                                     duration_ns=config.flap_duration_ns,
                                     index=index))
            index += 1

    router_rng = DeterministicRNG(config.seed * 1_000_003 + 2)
    routers = sorted(topology.router_nodes)
    if routers:
        for at in _times(router_rng, config.router_failures,
                         config.router_down_ns):
            target = router_rng.choice(routers)
            events.append(ChurnEvent(at_ns=at, kind=FaultKind.ROUTER_FAIL,
                                     target=(target,),
                                     duration_ns=config.router_down_ns,
                                     index=index))
            index += 1

    crash_rng = DeterministicRNG(config.seed * 1_000_003 + 3)
    compute = list(topology.compute_nodes)
    if compute:
        crashed: Set[int] = set()
        for at in _times(crash_rng, config.node_crashes,
                         config.crash_down_ns):
            candidates = [node for node in compute if node not in crashed]
            if not candidates:
                break
            target = crash_rng.choice(candidates)
            # One crash per node per campaign keeps the detection
            # bookkeeping unambiguous (a node cannot die again while
            # its first failure is still being measured).
            crashed.add(target)
            events.append(ChurnEvent(at_ns=at, kind=FaultKind.NODE_CRASH,
                                     target=(target,),
                                     duration_ns=config.crash_down_ns,
                                     index=index))
            index += 1

    mn_rng = DeterministicRNG(config.seed * 1_000_003 + 4)
    shards = sorted(shard_ids) if shard_ids else []
    if shards:
        hit: Set[int] = set()
        for at in _times(mn_rng, config.mn_crashes,
                         config.mn_crash_down_ns):
            candidates = [shard for shard in shards if shard not in hit]
            if not candidates:
                break
            target = mn_rng.choice(candidates)
            # One crash per shard per campaign: a shard's next standby
            # only rejoins when the crashed host heals, so a second
            # crash inside the window could find nothing to promote.
            hit.add(target)
            events.append(ChurnEvent(at_ns=at, kind=FaultKind.MN_CRASH,
                                     target=(target,),
                                     duration_ns=config.mn_crash_down_ns,
                                     index=index))
            index += 1

    return sorted(events, key=lambda event: (event.at_ns, event.index))


class ChurnEngine:
    """Applies a fault campaign to a live event fabric and its runtime.

    Wires three layers together on one simulated clock:

    * **fabric** -- flaps toggle :class:`~repro.fabric.phy.PhysicalLink`
      admin state (both directions), router failures and node crashes
      toggle :class:`~repro.fabric.network.Switch` admin state;
    * **runtime** -- every fault/heal is reported to the
      :class:`~repro.runtime.fault.FaultHandler` (TST DOWN/UP, node
      failure revocations), and a heartbeat pump advances the
      :class:`~repro.runtime.monitor.MonitorNode` clock in step with the
      simulator, polling every live agent and sweeping for dead nodes;
    * **transport** -- while active the engine registers as a background
      source, so ``drive_all`` runs in bounded time slices instead of
      expecting the (never-idle, pump-driven) queue to drain.

    Crashed nodes stop heart-beating, so their failure is *detected* by
    the sweep after the heartbeat timeout; the detection latency of each
    crash is recorded in simulated time.  ``on_node_failure`` (if given)
    fires once per detected crash with ``(node_id, RecoveryPlan)`` --
    the hook churn experiments use to trigger matchmaker re-borrows.
    """

    def __init__(self, transport, monitor, fault_handler: FaultHandler,
                 config: Optional[ChurnConfig] = None,
                 on_node_failure: Optional[
                     Callable[[int, RecoveryPlan], None]] = None):
        self.transport = transport
        self.sim = transport.sim
        self.monitor = monitor
        self.fault_handler = fault_handler
        self.config = config or ChurnConfig()
        self.on_node_failure = on_node_failure
        self.campaign: List[ChurnEvent] = generate_campaign(
            self.config, monitor.topology,
            shard_ids=getattr(monitor, "shard_ids", None))
        self.active = False
        self._handles: List[list] = []
        self._pump_handle: Optional[list] = None
        self._crashed: Set[int] = set()
        #: Faults currently applied (healed early if the engine stops).
        self._down_links: Set[Tuple[int, int]] = set()
        self._down_routers: Set[int] = set()
        self._crash_at: Dict[int, int] = {}  # simlint: disable=SIM006 -- one entry per crashed node, a campaign crashes each node at most once
        #: Crashes applied but not yet detected by the heartbeat sweep.
        self._crash_pending: Set[int] = set()
        #: Monitor shards whose primary is down (promotion pending).
        self._mn_down: Set[int] = set()
        #: Healed shard hosts waiting for their shard to be promoted
        #: before they can rejoin as the new standby.
        self._mn_rejoin_pending: Set[int] = set()
        # Campaign outcome counters (all in simulated time).
        self.flaps_applied = 0
        self.routers_failed = 0
        self.nodes_crashed = 0
        self.mn_crashes_applied = 0
        self.mn_standbys_rejoined = 0
        self.mn_failover_ns: Dict[int, int] = {}  # simlint: disable=SIM006 -- one latency per shard per campaign
        self.heals_applied = 0
        self.heartbeat_rounds = 0
        self.detection_latency_ns: Dict[int, int] = {}  # simlint: disable=SIM006 -- bounded like _crash_at: one latency per crashed node per campaign
        self.plans: List[RecoveryPlan] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Install the campaign and the heartbeat pump on the simulator."""
        if self.active:
            return
        self.active = True
        self.monitor.heartbeat_timeout_ns = self.config.heartbeat_timeout_ns
        self.transport.add_background_source()
        start_ns = self.sim.now
        for event in self.campaign:
            self._handles.append(self.sim.schedule_at(
                start_ns + event.at_ns, self._apply, event))
            self._handles.append(self.sim.schedule_at(
                start_ns + event.at_ns + event.duration_ns,
                self._heal, event))
        self._pump_handle = self.sim.schedule_at(
            start_ns + self.config.heartbeat_period_ns, self._pump)

    def stop(self) -> None:
        """Cancel outstanding campaign/pump events and deregister.

        Faults already applied but not yet healed are healed on the
        spot, so a stopped engine leaves the fabric clean and the
        transport free to quiet-drain.
        """
        if not self.active:
            return
        self.active = False
        for handle in self._handles:
            self.sim.cancel(handle)
        self._handles.clear()
        if self._pump_handle is not None:
            self.sim.cancel(self._pump_handle)
            self._pump_handle = None
        # Heal any fault whose scheduled heal we just cancelled.
        for node_a, node_b in sorted(self._down_links):
            for link in self._fabric_links(node_a, node_b):
                link.set_admin_up()
            self._report_link(node_a, node_b, LinkStatus.UP)
            self.fault_handler.handle_link_up(node_a, node_b)
        self._down_links.clear()
        for router in sorted(self._down_routers):
            self.transport.fabric.switches[router].set_admin_up()
            for neighbor in self.monitor.topology.neighbors(router):
                self._report_link(router, neighbor, LinkStatus.UP)
                self.fault_handler.handle_link_up(router, neighbor)
        self._down_routers.clear()
        for node_id in sorted(self._crashed):
            self._recover_node(node_id)
        self._crashed.clear()
        # Settle any monitor-shard crash still mid-failover: promote the
        # standby now (latency still measured in simulated time) and let
        # healed hosts rejoin, so the runtime is left fully served.
        if self._mn_down or self._mn_rejoin_pending:
            self.monitor.advance_time(self.sim.now - self.monitor.now_ns)
            self._check_mn_failover()
            self._drain_mn_rejoins()
        self.transport.remove_background_source()

    # ------------------------------------------------------------------
    # Fault application / healing
    # ------------------------------------------------------------------
    def _fabric_links(self, node_a: int, node_b: int):
        links = self.transport.fabric.links
        for key in ((node_a, node_b), (node_b, node_a)):
            link = links.get(key)
            if link is not None:
                yield link

    def _report_link(self, node_a: int, node_b: int,
                     status: LinkStatus) -> None:
        """Sync the endpoint agents' link view with the injected fault.

        Heartbeats re-report each agent's link table; without this the
        very next pump round would fold a healthy-looking report over
        the TST DOWN entry and silently heal the fault.  Router
        endpoints have no agent (only compute nodes register), so only
        registered endpoints are updated.
        """
        registered = set(self.monitor.registered_nodes)
        for reporter, neighbor in ((node_a, node_b), (node_b, node_a)):
            if reporter in registered:
                self.monitor.agent(reporter).set_link_status(neighbor, status)

    def _apply(self, event: ChurnEvent) -> None:
        if event.kind is FaultKind.LINK_FLAP:
            node_a, node_b = event.target
            for link in self._fabric_links(node_a, node_b):
                link.set_admin_down()
            self._down_links.add((node_a, node_b))
            self._report_link(node_a, node_b, LinkStatus.DOWN)
            self.plans.append(self.fault_handler.handle_link_down(node_a, node_b))
            self.flaps_applied += 1
        elif event.kind is FaultKind.ROUTER_FAIL:
            (router,) = event.target
            self.transport.fabric.switches[router].set_admin_down()
            self._down_routers.add(router)
            for neighbor in self.monitor.topology.neighbors(router):
                self._report_link(router, neighbor, LinkStatus.DOWN)
                self.plans.append(
                    self.fault_handler.handle_link_down(router, neighbor))
            self.routers_failed += 1
        elif event.kind is FaultKind.MN_CRASH:
            (shard,) = event.target
            # Stamp the crash at the *simulated* instant so the failover
            # latency measured at promotion is injection-to-promotion.
            self.monitor.advance_time(self.sim.now - self.monitor.now_ns)
            self.monitor.crash_primary(shard)
            self._mn_down.add(shard)
            self.mn_crashes_applied += 1
        else:
            (node,) = event.target
            self.transport.fabric.switches[node].set_admin_down()
            self._crashed.add(node)
            self._crash_pending.add(node)
            self._crash_at[node] = self.sim.now
            self.nodes_crashed += 1

    def _heal(self, event: ChurnEvent) -> None:
        if event.kind is FaultKind.LINK_FLAP:
            node_a, node_b = event.target
            for link in self._fabric_links(node_a, node_b):
                link.set_admin_up()
            self._down_links.discard((node_a, node_b))
            self._report_link(node_a, node_b, LinkStatus.UP)
            self.fault_handler.handle_link_up(node_a, node_b)
        elif event.kind is FaultKind.ROUTER_FAIL:
            (router,) = event.target
            self.transport.fabric.switches[router].set_admin_up()
            self._down_routers.discard(router)
            for neighbor in self.monitor.topology.neighbors(router):
                self._report_link(router, neighbor, LinkStatus.UP)
                self.fault_handler.handle_link_up(router, neighbor)
        elif event.kind is FaultKind.MN_CRASH:
            (shard,) = event.target
            # The crashed host is back; it can only rejoin as the new
            # standby once the pump has promoted the old standby.
            self._mn_rejoin_pending.add(shard)
            self._drain_mn_rejoins()
        else:
            (node,) = event.target
            if node in self._crashed:
                self._crashed.discard(node)
                self._recover_node(node)
        self.heals_applied += 1

    def _recover_node(self, node_id: int) -> None:
        self.transport.fabric.switches[node_id].set_admin_up()
        self._crash_pending.discard(node_id)
        self.fault_handler.handle_node_recovery(node_id)

    def _check_mn_failover(self) -> None:
        """Promote crashed shards' standbys and record failover latency."""
        if not self._mn_down:
            return
        for shard_id, latency in self.monitor.check_failover():
            self.mn_failover_ns[shard_id] = latency
            self._mn_down.discard(shard_id)
        self._drain_mn_rejoins()

    def _drain_mn_rejoins(self) -> None:
        for shard_id in sorted(self._mn_rejoin_pending):
            if self.monitor.shard_alive(shard_id):
                self.monitor.rejoin_standby(shard_id)
                self._mn_rejoin_pending.discard(shard_id)
                self.mn_standbys_rejoined += 1

    # ------------------------------------------------------------------
    # Heartbeat pump (simulated clock)
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        if not self.active:
            return
        self.heartbeat_rounds += 1
        monitor = self.monitor
        monitor.advance_time(self.sim.now - monitor.now_ns)
        # Poll live agents in sorted order (crashed nodes stay silent,
        # which is exactly what makes them detectable).
        for node_id in monitor.registered_nodes:
            if node_id in self._crashed:
                continue
            monitor.ingest_agent_heartbeat(monitor.agent(node_id))
        plans = self.fault_handler.check_heartbeats()
        for plan in plans:
            self.plans.append(plan)
            for node_id in sorted(self._crash_pending):
                if plan.event == f"node{node_id}-failure":
                    self.detection_latency_ns[node_id] = (
                        self.sim.now - self._crash_at[node_id])
                    self._crash_pending.discard(node_id)
                    if self.on_node_failure is not None:
                        self.on_node_failure(node_id, plan)
                    break
        # A crashed shard primary's silence is noticed by the same pump
        # round: promote its standby and replay the in-flight tickets.
        self._check_mn_failover()
        self._pump_handle = self.sim.schedule_at(
            self.sim.now + self.config.heartbeat_period_ns, self._pump)

    # ------------------------------------------------------------------
    # Outcome
    # ------------------------------------------------------------------
    def stats_dict(self) -> Dict[str, object]:
        """Canonical (JSON-serialisable) campaign outcome snapshot."""
        return {
            "campaign_events": len(self.campaign),
            "flaps_applied": self.flaps_applied,
            "routers_failed": self.routers_failed,
            "nodes_crashed": self.nodes_crashed,
            "mn_crashes_applied": self.mn_crashes_applied,
            "mn_failover_ns": {
                str(shard): latency for shard, latency
                in sorted(self.mn_failover_ns.items())},
            "mn_tickets_replayed": getattr(self.monitor,
                                           "tickets_replayed", 0),
            "mn_standbys_rejoined": self.mn_standbys_rejoined,
            "heals_applied": self.heals_applied,
            "heartbeat_rounds": self.heartbeat_rounds,
            "detection_latency_ns": {
                str(node): latency for node, latency
                in sorted(self.detection_latency_ns.items())},
            "recovery_plans": [plan.event for plan in self.plans],
        }
