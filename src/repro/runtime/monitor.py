"""Monitor Node: global resource allocation for the rack.

The MN keeps the RRT/RAT/TST up to date from agent heartbeats and
answers allocation requests.  The donor-selection policy follows the
prototype: among nodes with enough idle resource it picks the one
closest (fewest fabric hops) to the requester, preferring donors whose
links to the requester are healthy.  Because RRT records can be stale,
the MN performs a handshake with the candidate donor's agent and
retries with the next candidate on refusal (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fabric.topology import Topology
from repro.runtime.agent import HeartbeatReport, NodeAgent
from repro.runtime.policies import DistanceFirstPolicy, DonorSelectionPolicy
from repro.runtime.tables import (
    AllocationRecord,
    LinkStatus,
    ResourceAllocationTable,
    ResourceKind,
    ResourceRecord,
    ResourceRegistrationTable,
    TopologyStatusTable,
)


class AllocationError(RuntimeError):
    """Raised when no donor can satisfy a request."""


class BatchPlanError(AllocationError):
    """A batch plan failed mid-way through the queue.

    Carries exactly which ticket died and which tickets were put back
    on the request queue, so callers can drop (or resize) the failed
    request and retry the rest precisely instead of re-queueing blind.
    """

    def __init__(self, message: str, failed_request: "QueuedRequest",
                 requeued_tickets: List[int]):
        super().__init__(message)
        #: Ticket of the request the fleet could not cover.
        self.failed_ticket = failed_request.ticket
        #: The failed request itself (requester, size) for resubmission.
        self.failed_request = failed_request
        #: Tickets restored to the queue, in their original FIFO order.
        self.requeued_tickets = requeued_tickets


@dataclass
class Allocation:
    """Result handed back to the requester."""

    record: AllocationRecord
    donor: int
    amount: int
    hops: int


@dataclass
class QueuedRequest:
    """One batched memory request parked on the MN's request queue."""

    ticket: int
    requester: int
    size_bytes: int


@dataclass
class BatchPlanEntry:
    """Planned donor split for one queued request.

    ``plan`` is ``[(donor, take_bytes), ...]`` -- a single entry in the
    common one-donor case, multiple when the request had to spill.
    """

    ticket: int
    requester: int
    plan: List[tuple]


class MonitorNode:
    """The central resource manager (must be spared in a real deployment;
    the prototype -- and this model -- run a single instance)."""

    def __init__(self, topology: Topology, heartbeat_timeout_ns: int = 5_000_000_000,
                 policy: Optional[DonorSelectionPolicy] = None):
        self.topology = topology
        self.heartbeat_timeout_ns = heartbeat_timeout_ns
        self.policy = policy or DistanceFirstPolicy()
        self.rrt = ResourceRegistrationTable()
        self.rat = ResourceAllocationTable()
        self.tst = TopologyStatusTable()
        self._agents: Dict[int, NodeAgent] = {}  # simlint: disable=SIM006 -- bounded by fleet size, agents never deregister
        #: node_id -> (rrt.version, memory/accelerator/nic records):
        #: the fused heartbeat's per-node row cache, validated against
        #: the RRT version so replaced records are never written stale.
        self._beat_rows: Dict[int, tuple] = {}  # simlint: disable=SIM006 -- bounded by fleet size
        self.now_ns = 0
        self.requests_handled = 0
        self.handshake_retries = 0
        self._request_queue: List[QueuedRequest] = []
        self._next_ticket = 0
        #: Releases that arrived while the donor's agent was gone (dead
        #: or deregistered): the RAT record is settled, but the donor's
        #: own books could not be -- reconciled when the donor returns.
        self.orphaned_releases = 0
        self._orphaned: Dict[int, Dict[ResourceKind, int]] = {}  # simlint: disable=SIM006 -- drained on donor recovery; bounded by fleet size

    # ------------------------------------------------------------------
    # Registration and heartbeats
    # ------------------------------------------------------------------
    def register_agent(self, agent: NodeAgent) -> None:
        """Register a node's agent and ingest an initial report."""
        self._agents[agent.node_id] = agent
        self.reconcile_orphaned_releases(agent.node_id)
        self.ingest_agent_heartbeat(agent)

    def adopt_agent(self, agent: NodeAgent) -> None:
        """Track an agent for handshakes without ingesting its resources.

        Used by the shard coordinator: a foreign requester's agent must
        be known to this shard (requester validation, handshake plumbing)
        while its resources stay registered with its owning shard -- no
        RRT row is created, so the node can never be picked as a donor
        here.
        """
        self._agents[agent.node_id] = agent

    def deregister_agent(self, node_id: int) -> None:
        """Forget a node's agent (decommission/migration).

        RRT/RAT rows are left to the fault paths; releases naming the
        departed donor are counted as orphaned until it re-registers.
        """
        self._agents.pop(node_id, None)

    @property
    def registered_nodes(self) -> List[int]:
        return sorted(self._agents)

    def agent(self, node_id: int) -> NodeAgent:
        try:
            return self._agents[node_id]
        except KeyError:
            raise AllocationError(f"node {node_id} is not registered") from None

    def advance_time(self, delta_ns: int) -> None:
        """Advance the runtime's notion of time (heartbeat bookkeeping)."""
        if delta_ns < 0:
            raise ValueError("time cannot move backwards")
        self.now_ns += delta_ns

    def _fold_resource(self, node_id: int, kind: ResourceKind,
                       capacity: int, available: int,
                       timestamp_ns: int) -> None:
        """Fold one (node, kind) availability row into the RRT.

        Refreshes the existing record in place when possible:
        replication ingests a heartbeat per commit/release, and
        rebuilding three validated dataclasses per report dominated the
        sharded-MN hot path.  Field-for-field identical to
        re-registering (register() overwrote the row with a fresh
        record, which also reset capabilities).
        """
        available = min(available, capacity)
        record = self.rrt.get(node_id, kind)
        if (record is not None and record.capacity == capacity
                and available >= 0):
            record.available = available
            record.last_heartbeat_ns = timestamp_ns
            record.capabilities = ""
        else:
            self.rrt.register(ResourceRecord(
                node_id=node_id, kind=kind, capacity=capacity,
                available=available, last_heartbeat_ns=timestamp_ns,
            ))

    def ingest_heartbeat(self, report: HeartbeatReport) -> None:
        """Fold one heartbeat report into the RRT and TST."""
        for kind in ResourceKind:
            self._fold_resource(report.node_id, kind,
                                report.capacity.get(kind, 0),
                                report.available.get(kind, 0),
                                report.timestamp_ns)
        # Sorted neighbours: TST rows must be folded in an order that
        # does not depend on how the agent's link_status dict was built.
        for neighbor in sorted(report.link_status):
            self.tst.report(report.node_id, neighbor,
                            report.link_status[neighbor],
                            now_ns=report.timestamp_ns)

    def ingest_agent_heartbeat(self, agent: NodeAgent,
                               now_ns: Optional[int] = None) -> None:
        """Fold an agent's current state straight into the RRT and TST.

        Byte-identical to ``ingest_heartbeat(agent.heartbeat(now_ns))``
        but skips materializing the :class:`HeartbeatReport` (two kind
        dicts, a link-table copy and a dataclass per beat) -- the
        replicated-commit path beats once per allocation, which made the
        report itself a measurable share of the sharded-MN hot path.
        ``now_ns`` stamps the beat; it defaults to this monitor's clock
        (callers beating several replicas pass one shared timestamp).
        """
        if now_ns is None:
            now_ns = self.now_ns
        node_id = agent.node_id
        rrt = self.rrt
        cached = self._beat_rows.get(node_id)
        if cached is not None and cached[0] == rrt.version:
            # Row-cache fast path: the three records were looked up on a
            # previous beat and no register() has replaced any RRT row
            # since.  Idle amounts are computed inline (each is the
            # agent's capacity minus non-negative commitments, so the
            # [0, capacity] clamp of the report path is already
            # satisfied) and the capacity recheck keeps the fold
            # semantics if a capacity ever changed in place.
            mem, acc, nic = cached[1], cached[2], cached[3]
            available = (agent.memory_capacity_bytes
                         - agent.local_memory_used_bytes
                         - agent.donated_bytes - agent.reserve_bytes)
            if available < 0:
                available = 0
            if (mem.capacity == agent.memory_capacity_bytes
                    and acc.capacity == agent.num_accelerators
                    and nic.capacity == agent.num_nics):
                mem.available = available
                mem.last_heartbeat_ns = now_ns
                mem.capabilities = ""
                available = agent.num_accelerators - agent.accelerators_donated
                acc.available = available if available > 0 else 0
                acc.last_heartbeat_ns = now_ns
                acc.capabilities = ""
                available = agent.num_nics - agent.nics_donated
                nic.available = available if available > 0 else 0
                nic.last_heartbeat_ns = now_ns
                nic.capabilities = ""
                for neighbor, status in agent.link_reports():
                    self.tst.report(node_id, neighbor, status, now_ns=now_ns)
                return
        # The _fold_resource fast path, inlined: one beat per replicated
        # commit/release makes even the three call frames per beat
        # measurable.
        rows = rrt.rows
        for kind, capacity, available in (
                (ResourceKind.MEMORY, agent.memory_capacity_bytes,
                 agent.idle_memory_bytes()),
                (ResourceKind.ACCELERATOR, agent.num_accelerators,
                 agent.idle_accelerators()),
                (ResourceKind.NIC, agent.num_nics, agent.idle_nics())):
            if available > capacity:
                available = capacity
            record = rows.get((node_id, kind))
            if (record is not None and record.capacity == capacity
                    and available >= 0):
                record.available = available
                record.last_heartbeat_ns = now_ns
                record.capabilities = ""
            else:
                self._fold_resource(node_id, kind, capacity, available,
                                    now_ns)
        mem = rows.get((node_id, ResourceKind.MEMORY))
        acc = rows.get((node_id, ResourceKind.ACCELERATOR))
        nic = rows.get((node_id, ResourceKind.NIC))
        if mem is not None and acc is not None and nic is not None:
            self._beat_rows[node_id] = (rrt.version, mem, acc, nic)
        for neighbor, status in agent.link_reports():
            self.tst.report(node_id, neighbor, status, now_ns=now_ns)

    def collect_heartbeats(self) -> None:
        """Poll every registered agent (one heartbeat round).

        Polling in sorted node order makes the broadcast order -- and
        therefore every downstream tie-break fed by heartbeat ingestion
        -- deterministic by construction instead of by dict insertion
        history.
        """
        for node_id in sorted(self._agents):
            self.ingest_agent_heartbeat(self._agents[node_id])

    def dead_nodes(self) -> List[int]:
        """Nodes whose heartbeats have stopped arriving."""
        return self.rrt.stale_nodes(self.now_ns, self.heartbeat_timeout_ns)

    # ------------------------------------------------------------------
    # Donor selection
    # ------------------------------------------------------------------
    def _donor_eligible(self, requester: int, record: ResourceRecord) -> bool:
        """Shared eligibility rules for every donor-selection path.

        Both the allocation loop and the spill planner must apply the
        same filters, or a spill plan could include a donor the pinned
        per-chunk allocation rejects (unwinding the whole borrow).
        Called *lazily* while walking the policy-ordered candidates --
        the path check is a shortest-path query, and the first candidate
        usually wins, so an eager per-candidate filter would pay O(N)
        graph searches per request.
        """
        return (record.node_id in self._agents
                and self._path_usable(requester, record.node_id))

    def _candidate_donors(self, requester: int, kind: ResourceKind,
                          amount: int,
                          donor: Optional[int] = None) -> List[ResourceRecord]:
        """Donors with enough idle resource, ordered by the active policy."""
        candidates = [
            record for record in self.rrt.records_of_kind(kind)
            if record.node_id != requester and record.available >= amount
            and (donor is None or record.node_id == donor)
        ]
        return self.policy.order(requester, kind, candidates, self.topology, self.rat)

    def _eligible_memory_donors(self, requester: int,
                                available: Dict[int, int]):
        """Policy-ordered eligible memory donors, yielded lazily.

        ``available`` maps donor id to the idle bytes the caller is
        planning against -- the live RRT view for the unbatched spill
        path, a working copy for batch planning.  Yielding keeps the
        eligibility check (a shortest-path query) lazy, so greedy
        consumers stop paying it once their demand is covered; both the
        spill planner and the batch planner walk this one generator, so
        their donor choices can never diverge.
        """
        candidates = [
            record for record in self.rrt.records_of_kind(ResourceKind.MEMORY)
            if record.node_id != requester
            and available.get(record.node_id, 0) > 0
        ]
        for record in self.policy.order(requester, ResourceKind.MEMORY,
                                        candidates, self.topology, self.rat):
            if self._donor_eligible(requester, record):
                yield record

    def partial_memory_plan(self, requester: int, size_bytes: int,
                            available: Dict[int, int]) -> tuple:
        """Drain policy-ordered donors towards ``size_bytes``; allow a shortfall.

        Returns ``(plan, remaining)`` where ``plan`` is the usual
        ``[(donor, take_bytes), ...]`` and ``remaining`` is the demand
        this monitor's donors could not cover.  The shard coordinator
        uses this to fill what it can from the owning shard before
        forwarding the remainder cross-leaf; the single-instance paths
        wrap it and treat any shortfall as an error.
        """
        plan: List[tuple] = []
        remaining = size_bytes
        for record in self._eligible_memory_donors(requester, available):
            if remaining <= 0:
                break
            take = min(available[record.node_id], remaining)
            plan.append((record.node_id, take))
            remaining -= take
        return plan, remaining

    def _greedy_memory_plan(self, requester: int, size_bytes: int,
                            available: Dict[int, int]) -> List[tuple]:
        """Drain policy-ordered donors until ``size_bytes`` is covered."""
        plan, remaining = self.partial_memory_plan(requester, size_bytes,
                                                   available)
        if remaining > 0:
            raise AllocationError(
                f"fleet cannot cover {size_bytes} bytes of memory for node "
                f"{requester}: {remaining} bytes short across "
                f"{len(plan)} donors")
        return plan

    def memory_spill_plan(self, requester: int,
                          size_bytes: int) -> List[tuple]:
        """Split a memory request across donors in policy-preference order.

        Returns ``[(donor, take_bytes), ...]`` covering ``size_bytes``
        by greedily draining each donor's advertised idle memory before
        moving to the policy's next choice -- the spill path used when
        no single donor can cover the request.  Raises
        :class:`AllocationError` when the whole fleet cannot.
        """
        if size_bytes <= 0:
            raise AllocationError("requested amount must be positive")
        available = {
            record.node_id: record.available
            for record in self.rrt.records_of_kind(ResourceKind.MEMORY)
        }
        return self._greedy_memory_plan(requester, size_bytes, available)

    # ------------------------------------------------------------------
    # Batched request queue
    # ------------------------------------------------------------------
    def queue_memory_request(self, requester: int, size_bytes: int) -> int:
        """Park one memory request on the batch queue; returns a ticket.

        Queued requests are not allocated until
        :meth:`plan_queued_requests` plans the whole batch, so a sweep
        of N borrowers can register every request first and then have
        donors assigned with knowledge of the *entire* demand instead
        of first-come-first-served greed.
        """
        if requester not in self._agents:
            raise AllocationError(
                f"requester node {requester} is not registered")
        if size_bytes <= 0:
            raise AllocationError("requested amount must be positive")
        ticket = self._next_ticket
        self._next_ticket += 1
        self._request_queue.append(
            QueuedRequest(ticket=ticket, requester=requester,
                          size_bytes=size_bytes))
        return ticket

    @property
    def queued_requests(self) -> int:
        """Requests currently parked on the batch queue."""
        return len(self._request_queue)

    def dequeue_tickets(self, tickets) -> int:
        """Drop specific parked requests from the batch queue.

        Lets the owner of a failed batch retire exactly the tickets a
        :class:`BatchPlanError` re-queued (keeping the atomic-batch
        contract) without disturbing requests parked by anyone else.
        Returns how many were removed.
        """
        drop = set(tickets)
        before = len(self._request_queue)
        self._request_queue = [queued for queued in self._request_queue
                               if queued.ticket not in drop]
        return before - len(self._request_queue)

    def plan_queued_requests(self) -> List[BatchPlanEntry]:
        """Plan donors for every queued request against shared capacity.

        Plans in FIFO order against a *working copy* of the advertised
        idle memory, so one batch never double-books a donor: bytes
        planned for an earlier ticket are unavailable to later ones.
        Each request prefers a single policy-ordered donor and spills
        across donors only when no single one can cover it (the same
        semantics as the unbatched borrow path).

        On success the queue is consumed.  On a mid-batch failure
        nothing was allocated (planning is not allocation), so every
        ticket *except* the failed one is put back on the queue in its
        original FIFO order and a :class:`BatchPlanError` is raised
        naming the failed ticket and the re-queued ones -- callers can
        drop or shrink exactly the request that died and retry the rest.
        """
        batch, self._request_queue = self._request_queue, []
        available: Dict[int, int] = {
            record.node_id: record.available
            for record in self.rrt.records_of_kind(ResourceKind.MEMORY)
        }
        entries: List[BatchPlanEntry] = []
        for request in batch:
            # Single-donor preference, then greedy spill in policy
            # order -- the same semantics as the unbatched borrow path
            # (request_memory, then memory_spill_plan on refusal), and
            # the same donor walk (_eligible_memory_donors).  Planning
            # is not an allocation: requests_handled counts only the
            # per-chunk pinned requests the caller actually issues.
            single = next(
                (record for record
                 in self._eligible_memory_donors(request.requester, available)
                 if available[record.node_id] >= request.size_bytes),
                None)
            if single is not None:
                plan = [(single.node_id, request.size_bytes)]
            else:
                try:
                    plan = self._greedy_memory_plan(request.requester,
                                                    request.size_bytes,
                                                    available)
                except AllocationError as error:
                    # Restore every other ticket (earlier-planned ones
                    # included: their plans were never executed) ahead
                    # of anything queued while this batch was parked.
                    untouched = [queued for queued in batch
                                 if queued.ticket != request.ticket]
                    self._request_queue = untouched + self._request_queue
                    raise BatchPlanError(
                        f"batched request (ticket {request.ticket}, after "
                        f"{len(entries)} earlier tickets): {error}",
                        failed_request=request,
                        requeued_tickets=[q.ticket for q in untouched],
                    ) from None
            for donor, take in plan:
                available[donor] -= take
            entries.append(BatchPlanEntry(ticket=request.ticket,
                                          requester=request.requester,
                                          plan=plan))
        return entries

    def complete_ticket(self, ticket: int) -> None:
        """A planned ticket's chunks were all allocated (batch protocol).

        The single-instance MN keeps no in-flight ticket state -- the
        plan either executes synchronously or the caller unwinds -- so
        this is a no-op hook.  The sharded coordinator overrides it to
        retire the ticket from its replay tracking; callers (the
        matchmaker) call it unconditionally so both monitors speak the
        same batch protocol.
        """

    def _path_usable(self, requester: int, donor: int) -> bool:
        """True when every link on the path is reported usable (or unknown).

        The TST keys links by the *unordered* node pair;
        ``reported_status`` normalises the same way, so a DOWN report
        vetoes the path whichever direction traverses the link, while
        unreported links (None) never veto -- only links somebody
        actually reported may, unlike ``status()`` which defaults
        unknown links to DOWN.
        """
        path = self.topology.path_nodes(requester, donor)
        reported = self.tst.reported_status
        for node_a, node_b in zip(path, path[1:]):
            if reported(node_a, node_b) is LinkStatus.DOWN:
                return False
        return True

    # ------------------------------------------------------------------
    # Allocation entry points
    # ------------------------------------------------------------------
    def request_memory(self, requester: int, size_bytes: int,
                       donor: Optional[int] = None) -> Allocation:
        """Allocate ``size_bytes`` of remote memory for ``requester``.

        ``donor`` pins the allocation to one node (used by the spill
        path, which has already planned per-donor amounts); the default
        lets the policy choose.
        """
        return self._request(requester, ResourceKind.MEMORY, size_bytes,
                             handshake=lambda agent: agent.handle_hot_remove(size_bytes),
                             donor=donor)

    def request_accelerator(self, requester: int) -> Allocation:
        """Allocate one remote accelerator for ``requester``."""
        return self._request(requester, ResourceKind.ACCELERATOR, 1,
                             handshake=lambda agent: agent.handle_accelerator_grant())

    def request_nic(self, requester: int) -> Allocation:
        """Allocate one remote NIC for ``requester``."""
        return self._request(requester, ResourceKind.NIC, 1,
                             handshake=lambda agent: agent.handle_nic_grant())

    def _request(self, requester: int, kind: ResourceKind, amount: int,
                 handshake, donor: Optional[int] = None) -> Allocation:
        if requester not in self._agents:
            raise AllocationError(f"requester node {requester} is not registered")
        if amount <= 0:
            raise AllocationError("requested amount must be positive")
        self.requests_handled += 1
        candidates = self._candidate_donors(requester, kind, amount, donor=donor)
        if not candidates:
            raise AllocationError(
                f"no donor has {amount} of {kind.value} available for node {requester}"
            )
        for record in candidates:
            if not self._donor_eligible(requester, record):
                continue
            agent = self._agents[record.node_id]
            if not handshake(agent):
                # Stale RRT record: refresh it and try the next donor.
                self.handshake_retries += 1
                self.ingest_agent_heartbeat(agent)
                continue
            self.ingest_agent_heartbeat(agent)
            allocation_record = self.rat.add(AllocationRecord(
                requester=requester, donor=record.node_id, kind=kind,
                amount=amount, created_at_ns=self.now_ns,
            ))
            return Allocation(
                record=allocation_record,
                donor=record.node_id,
                amount=amount,
                hops=self.topology.hop_count(requester, record.node_id),
            )
        raise AllocationError(
            f"every candidate donor refused the {kind.value} request from node {requester}"
        )

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------
    def release(self, allocation: Allocation) -> None:
        """Return a previously granted allocation to its donor.

        A release naming a donor whose agent is gone (dead donor, or a
        node migrated off this shard) settles the RAT record but cannot
        settle the donor's own books -- the amount is counted as an
        *orphaned release* and reconciled into the RRT when the donor
        returns (:meth:`reconcile_orphaned_releases`), so a recovered
        donor's advertised capacity does not leak.
        """
        record = self.rat.release(allocation.record.allocation_id)
        agent = self._agents.get(record.donor)
        if agent is None:
            self.orphaned_releases += 1
            per_kind = self._orphaned.setdefault(record.donor, {})
            per_kind[record.kind] = per_kind.get(record.kind, 0) + record.amount
            return
        if record.kind is ResourceKind.MEMORY:
            agent.handle_hot_add_back(record.amount)
        elif record.kind is ResourceKind.ACCELERATOR:
            agent.handle_accelerator_release()
        elif record.kind is ResourceKind.NIC:
            agent.handle_nic_release()
        self.ingest_agent_heartbeat(agent)

    def orphaned_amount(self, node_id: int,
                        kind: ResourceKind = ResourceKind.MEMORY) -> int:
        """Released-but-unsettled amount owed to a currently-gone donor."""
        return self._orphaned.get(node_id, {}).get(kind, 0)

    def reconcile_orphaned_releases(self, node_id: int) -> int:
        """Settle releases that arrived while the donor's agent was gone.

        Called on the donor's recovery (``handle_node_recovery``) and on
        re-registration: hot-adds the orphaned memory back into the
        agent (capped at its outstanding donations -- a node that truly
        rebooted has no donation ledger left to shrink) and returns the
        granted accelerator/NIC units, then re-ingests the heartbeat so
        the RRT advertises the reconciled capacity.  Returns the number
        of settled orphan entries.
        """
        per_kind = self._orphaned.pop(node_id, None)
        if per_kind is None:
            return 0
        agent = self._agents.get(node_id)
        if agent is None:
            # Recovery without an agent: keep the debt on the books.
            self._orphaned[node_id] = per_kind
            return 0
        settled = 0
        memory = min(per_kind.get(ResourceKind.MEMORY, 0), agent.donated_bytes)
        if memory > 0:
            agent.handle_hot_add_back(memory)
            settled += 1
        units = min(per_kind.get(ResourceKind.ACCELERATOR, 0),
                    agent.accelerators_donated)
        for _ in range(units):
            agent.handle_accelerator_release()
        settled += 1 if units else 0
        units = min(per_kind.get(ResourceKind.NIC, 0), agent.nics_donated)
        for _ in range(units):
            agent.handle_nic_release()
        settled += 1 if units else 0
        self.ingest_agent_heartbeat(agent)
        return settled
