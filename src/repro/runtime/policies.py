"""Donor-selection policies for the Monitor Node.

The prototype's allocator "only considers distance" (Section 5.3), but
the paper calls out that a production runtime should also weigh the
nature of the sharing (bandwidth demand), existing traffic on the
involved links, and load balance across donors.  This module implements
that design space as pluggable policies so the runtime experiments can
compare them:

* :class:`DistanceFirstPolicy`   -- the prototype's policy: fewest hops,
  ties broken by node id.
* :class:`LoadBalancedPolicy`    -- fewest *active allocations already
  placed on the donor*, then distance: spreads borrowed resources so no
  single donor becomes a hot spot.
* :class:`BandwidthAwarePolicy`  -- avoids donors whose path to the
  requester is already carrying allocated traffic, weighting distance
  by the number of existing allocations that share links with the
  candidate path.

Policies only *order* candidates; the Monitor Node still performs the
stale-record handshake and retries down the ordered list.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.fabric.topology import Topology
from repro.runtime.tables import (
    ResourceAllocationTable,
    ResourceKind,
    ResourceRecord,
)


class DonorSelectionPolicy:
    """Orders candidate donor records for one allocation request."""

    name = "abstract"

    def order(self, requester: int, kind: ResourceKind,
              candidates: List[ResourceRecord], topology: Topology,
              rat: ResourceAllocationTable) -> List[ResourceRecord]:
        """Return ``candidates`` sorted from most to least preferred."""
        raise NotImplementedError


class DistanceFirstPolicy(DonorSelectionPolicy):
    """The prototype's allocator: nearest donor first."""

    name = "distance-first"

    def order(self, requester, kind, candidates, topology, rat):
        return sorted(candidates, key=lambda record: (
            topology.hop_count(requester, record.node_id),
            record.node_id,
        ))


class LoadBalancedPolicy(DonorSelectionPolicy):
    """Prefer donors carrying the fewest active allocations.

    Distance is the tie-breaker, so nearby donors are still preferred
    among equally loaded ones.
    """

    name = "load-balanced"

    def order(self, requester, kind, candidates, topology, rat):
        def load(record: ResourceRecord) -> int:
            return len(rat.active_for_donor(record.node_id))

        return sorted(candidates, key=lambda record: (
            load(record),
            topology.hop_count(requester, record.node_id),
            record.node_id,
        ))


class BandwidthAwarePolicy(DonorSelectionPolicy):
    """Penalise donors whose path shares links with existing allocations.

    Each active allocation is assumed to load every link on the shortest
    path between its requester and donor; a candidate's score is its hop
    count plus ``contention_weight`` times the number of loaded links on
    its own path.  This captures the paper's observation that "existing
    traffic over involved links" should influence donor choice.
    """

    name = "bandwidth-aware"

    def __init__(self, contention_weight: float = 2.0):
        if contention_weight < 0:
            raise ValueError("contention weight must be non-negative")
        self.contention_weight = contention_weight

    @staticmethod
    def _path_links(topology: Topology, src: int, dst: int) -> List[Tuple[int, int]]:
        path = topology.shortest_path(src, dst)
        return [tuple(sorted(pair)) for pair in zip(path, path[1:])]

    def _link_load(self, topology: Topology,
                   rat: ResourceAllocationTable) -> Dict[Tuple[int, int], int]:
        load: Dict[Tuple[int, int], int] = {}
        for record in rat.active():
            for link in self._path_links(topology, record.requester, record.donor):
                load[link] = load.get(link, 0) + 1
        return load

    def order(self, requester, kind, candidates, topology, rat):
        link_load = self._link_load(topology, rat)

        def score(record: ResourceRecord) -> float:
            hops = topology.hop_count(requester, record.node_id)
            contended = sum(
                link_load.get(link, 0)
                for link in self._path_links(topology, requester, record.node_id)
            )
            return hops + self.contention_weight * contended

        return sorted(candidates, key=lambda record: (score(record), record.node_id))


#: Registry of the built-in policies, keyed by their public names.
POLICIES = {
    policy.name: policy
    for policy in (DistanceFirstPolicy, LoadBalancedPolicy, BandwidthAwarePolicy)
}


def make_policy(name: str, **kwargs) -> DonorSelectionPolicy:
    """Instantiate a donor-selection policy by its registry name."""
    try:
        policy_class = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown donor policy {name!r}; choose from {', '.join(sorted(POLICIES))}"
        ) from None
    return policy_class(**kwargs)
