"""Donor-selection policies for the Monitor Node.

The prototype's allocator "only considers distance" (Section 5.3), but
the paper calls out that a production runtime should also weigh the
nature of the sharing (bandwidth demand), existing traffic on the
involved links, and load balance across donors.  This module implements
that design space as pluggable policies so the runtime experiments can
compare them:

* :class:`DistanceFirstPolicy`   -- the prototype's policy: fewest hops,
  ties broken by node id.
* :class:`LoadBalancedPolicy`    -- fewest *active allocations already
  placed on the donor*, then distance: spreads borrowed resources so no
  single donor becomes a hot spot.
* :class:`BandwidthAwarePolicy`  -- avoids donors whose path to the
  requester is already carrying allocated traffic, weighting distance
  by the number of existing allocations that share links with the
  candidate path.
* :class:`ContentionAwarePolicy` -- the measured version of the above:
  instead of *assuming* every allocation loads its path, it consumes
  the event backend's per-link ``busy_fraction`` telemetry (via
  :class:`FabricContentionTelemetry`) and steers donor choice away
  from links that are actually saturated right now.

Policies only *order* candidates; the Monitor Node still performs the
stale-record handshake and retries down the ordered list.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.fabric.topology import Topology
from repro.runtime.tables import (
    ResourceAllocationTable,
    ResourceKind,
    ResourceRecord,
)


class DonorSelectionPolicy:
    """Orders candidate donor records for one allocation request."""

    name = "abstract"

    def order(self, requester: int, kind: ResourceKind,
              candidates: List[ResourceRecord], topology: Topology,
              rat: ResourceAllocationTable) -> List[ResourceRecord]:
        """Return ``candidates`` sorted from most to least preferred."""
        raise NotImplementedError


class DistanceFirstPolicy(DonorSelectionPolicy):
    """The prototype's allocator: nearest donor first."""

    name = "distance-first"

    def order(self, requester, kind, candidates, topology, rat):
        return sorted(candidates, key=lambda record: (
            topology.hop_count(requester, record.node_id),
            record.node_id,
        ))


class LoadBalancedPolicy(DonorSelectionPolicy):
    """Prefer donors carrying the fewest active allocations.

    Distance is the tie-breaker, so nearby donors are still preferred
    among equally loaded ones.
    """

    name = "load-balanced"

    def order(self, requester, kind, candidates, topology, rat):
        def load(record: ResourceRecord) -> int:
            return len(rat.active_for_donor(record.node_id))

        return sorted(candidates, key=lambda record: (
            load(record),
            topology.hop_count(requester, record.node_id),
            record.node_id,
        ))


class BandwidthAwarePolicy(DonorSelectionPolicy):
    """Penalise donors whose path shares links with existing allocations.

    Each active allocation is assumed to load every link on the shortest
    path between its requester and donor; a candidate's score is its hop
    count plus ``contention_weight`` times the number of loaded links on
    its own path.  This captures the paper's observation that "existing
    traffic over involved links" should influence donor choice.
    """

    name = "bandwidth-aware"

    def __init__(self, contention_weight: float = 2.0):
        if contention_weight < 0:
            raise ValueError("contention weight must be non-negative")
        self.contention_weight = contention_weight

    @staticmethod
    def _path_links(topology: Topology, src: int, dst: int) -> List[Tuple[int, int]]:
        path = topology.shortest_path(src, dst)
        return [tuple(sorted(pair)) for pair in zip(path, path[1:])]

    def _link_load(self, topology: Topology,
                   rat: ResourceAllocationTable) -> Dict[Tuple[int, int], int]:
        load: Dict[Tuple[int, int], int] = {}
        for record in rat.active():
            for link in self._path_links(topology, record.requester, record.donor):
                load[link] = load.get(link, 0) + 1
        return load

    def order(self, requester, kind, candidates, topology, rat):
        link_load = self._link_load(topology, rat)

        def score(record: ResourceRecord) -> float:
            hops = topology.hop_count(requester, record.node_id)
            contended = sum(
                link_load.get(link, 0)
                for link in self._path_links(topology, requester, record.node_id)
            )
            return hops + self.contention_weight * contended

        return sorted(candidates, key=lambda record: (score(record), record.node_id))


class FabricContentionTelemetry:
    """Live per-link busy fractions read off the event fabric.

    The event backend's :class:`~repro.fabric.phy.PhysicalLink` keeps a
    busy-time counter per direction; this adapter exposes the hotter
    direction of each unordered pair, which is what donor selection
    cares about (a saturated down-link slows the borrow no matter which
    way the request flowed).  Constructed from anything with a
    ``links`` dict keyed by directed ``(src, dst)`` pairs -- the
    :class:`~repro.core.system.EventFabric` -- or handed explicit
    fractions (tests, closed-form sweeps).
    """

    def __init__(self, fabric=None,
                 fractions: Optional[Dict[Tuple[int, int], float]] = None):
        if fabric is None and fractions is None:
            raise ValueError("telemetry needs a fabric or explicit fractions")
        self._fabric = fabric
        self._fractions = dict(fractions) if fractions is not None else None

    def link_busy(self, node_a: int, node_b: int) -> float:
        """Busy fraction of the hotter direction of one link (0.0 unknown)."""
        key = (node_a, node_b) if node_a <= node_b else (node_b, node_a)
        if self._fractions is not None:
            return self._fractions.get(key, 0.0)
        busy = 0.0
        for direction in (key, (key[1], key[0])):
            link = self._fabric.links.get(direction)
            if link is not None:
                busy = max(busy, link.busy_fraction())
        return busy


class ContentionAwarePolicy(DonorSelectionPolicy):
    """Steer donor choice away from links that are *measured* saturated.

    Scores each candidate as its hop count plus ``busy_weight`` times
    the summed busy fraction of the links on its path, so a donor one
    hop further away wins as soon as the nearer donor's path carries
    more than ``1 / busy_weight`` of extra measured load.  With no
    telemetry attached the busy term is zero and the ordering collapses
    to :class:`DistanceFirstPolicy` -- the policy can be installed
    before the fabric exists and wired up later.
    """

    name = "contention-aware"

    def __init__(self, telemetry: Optional[FabricContentionTelemetry] = None,
                 busy_weight: float = 8.0):
        if busy_weight < 0:
            raise ValueError("busy weight must be non-negative")
        self.telemetry = telemetry
        self.busy_weight = busy_weight

    def order(self, requester, kind, candidates, topology, rat):
        telemetry = self.telemetry

        def score(record: ResourceRecord) -> float:
            hops = topology.hop_count(requester, record.node_id)
            if telemetry is None:
                return float(hops)
            path = topology.shortest_path(requester, record.node_id)
            busy = sum(telemetry.link_busy(a, b)
                       for a, b in zip(path, path[1:]))
            return hops + self.busy_weight * busy

        return sorted(candidates, key=lambda record: (score(record), record.node_id))


#: Registry of the built-in policies, keyed by their public names.
POLICIES = {
    policy.name: policy
    for policy in (DistanceFirstPolicy, LoadBalancedPolicy,
                   BandwidthAwarePolicy, ContentionAwarePolicy)
}


def make_policy(name: str, **kwargs) -> DonorSelectionPolicy:
    """Instantiate a donor-selection policy by its registry name."""
    try:
        policy_class = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown donor policy {name!r}; choose from {', '.join(sorted(POLICIES))}"
        ) from None
    return policy_class(**kwargs)
