"""Sharded, replicated Monitor Node.

The single :class:`~repro.runtime.monitor.MonitorNode` is both the
fleet's throughput bottleneck at scale and the one component whose
crash the churn engine could not inject.  This module partitions the
MN's donor registry by fat-tree leaf into per-leaf shards behind a thin
coordinator, and replicates each shard so a primary crash is a
measured, recoverable fault instead of a total outage:

* :class:`MonitorShard`  -- one leaf-group's Monitor Node, run as a
  primary/standby pair.  Heartbeat ingests and allocation commits are
  applied to the standby as a deterministic log (table-level copies;
  agent handshakes run only on the primary), so at any instant the
  standby's RAT matches the primary's committed state.  A crash freezes
  the primary; releases arriving during the outage are buffered and
  applied at promotion, so no donor bytes are lost.
* :class:`ShardCoordinator` -- routes every request to the owning
  shard (requests by requester's leaf, pinned allocations and releases
  by donor's leaf), forwards cross-leaf spills, and merges batch plans
  against per-shard working copies so one batch never double-books a
  donor *across* shards.  It also tracks in-flight batch tickets: a
  ticket is retired when the caller confirms all its chunks, and every
  unconfirmed ticket is re-queued exactly once when a crashed shard's
  standby is promoted.
* :class:`ShardedMonitor` -- the drop-in MonitorNode facade: the
  matchmaker, fault handler and churn engine talk to it through the
  same API (plus aggregate RRT/RAT/TST views), so the whole runtime
  stack runs unchanged over one shard or many.

Planning cost is modelled, not wall-clocked: each shard is a serial
server charging ``mn_service_ns`` per request it plans, shards work in
parallel, and the coordinator charges ``route_ns`` per routed request
plus ``spill_forward_ns`` per cross-leaf forward.  A batch's makespan
is the coordinator's serial cost plus the busiest shard, which is what
the ``mn_failover`` experiment sweeps against the single-MN serial
cost.  All bookkeeping iterates sorted structures, so a fixed seed is
byte-identical across runs and timer backends.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.fabric.topology import Topology
from repro.runtime.agent import HeartbeatReport, NodeAgent
from repro.runtime.monitor import (
    Allocation,
    AllocationError,
    BatchPlanEntry,
    BatchPlanError,
    MonitorNode,
    QueuedRequest,
)
from repro.runtime.policies import DistanceFirstPolicy, DonorSelectionPolicy
from repro.runtime.tables import (
    AllocationRecord,
    LinkStatus,
    ResourceKind,
    ResourceRecord,
    TopologyStatusTable,
)


class ShardUnavailableError(AllocationError):
    """The owning shard's primary is down and no standby was promoted yet."""


def leaf_groups(topology: Topology) -> List[List[int]]:
    """Compute nodes grouped by their attachment router, sorted.

    The fat-tree's leaf router is each compute node's single router
    neighbour; topologies without routers (a direct pair) collapse to
    one group.  Groups are ordered by router id, nodes within a group
    by node id -- the deterministic shard-partitioning key.
    """
    routers = set(topology.router_nodes)
    groups: Dict[int, List[int]] = {}
    for node in sorted(topology.compute_nodes):
        attached = sorted(neighbor for neighbor in topology.neighbors(node)
                          if neighbor in routers)
        key = attached[0] if attached else -1
        groups.setdefault(key, []).append(node)
    return [groups[key] for key in sorted(groups)]


@dataclass
class _InflightTicket:
    """One planned-but-unconfirmed batch ticket tracked for replay."""

    request: QueuedRequest
    #: ``[donor, amount, allocation_id-or-None]`` per planned chunk.
    chunks: List[list]


class MonitorShard:
    """One leaf-group's Monitor Node, replicated as primary/standby."""

    def __init__(self, shard_id: int, topology: Topology,
                 nodes: Sequence[int], policy: DonorSelectionPolicy,
                 heartbeat_timeout_ns: int):
        self.shard_id = shard_id
        self.topology = topology
        self.nodes = sorted(nodes)
        self.policy = policy
        self.heartbeat_timeout_ns = heartbeat_timeout_ns
        self.primary = self._fresh_monitor()
        self.standby: Optional[MonitorNode] = self._fresh_monitor()
        self.alive = True
        self.crashed_at_ns: Optional[int] = None
        #: Member agents (this shard's leaf group) and adopted foreign
        #: agents, kept so a rebuilt standby can be re-populated.
        self._members: Dict[int, NodeAgent] = {}  # simlint: disable=SIM006 -- bounded by the leaf group
        self._foreign: Dict[int, NodeAgent] = {}  # simlint: disable=SIM006 -- bounded by fleet size
        #: Releases that arrived while the primary was down; applied in
        #: arrival order at promotion.
        self.pending_releases: List[int] = []
        # Replication / failover ledger.
        self.crashes = 0
        self.promotions = 0
        self.standbys_rebuilt = 0
        self.commits_replicated = 0
        self.releases_replicated = 0
        self.releases_recovered = 0
        self.release_misses = 0
        self.allocations_recovered = 0
        self.allocations_lost = 0
        self.failover_latency_ns: List[int] = []

    def _fresh_monitor(self) -> MonitorNode:
        return MonitorNode(self.topology,
                           heartbeat_timeout_ns=self.heartbeat_timeout_ns,
                           policy=self.policy)

    def replicas(self) -> List[MonitorNode]:
        """Replicas the deterministic log is applied to, primary first."""
        out: List[MonitorNode] = []
        if self.alive:
            out.append(self.primary)
        if self.standby is not None:
            out.append(self.standby)
        return out

    @property
    def live(self) -> MonitorNode:
        """The replica serving table reads right now.

        The primary while it is up; the standby during the
        crash-to-promotion window (its books are the replicated truth);
        the frozen primary only if both are gone.
        """
        if self.alive:
            return self.primary
        if self.standby is not None:
            return self.standby
        return self.primary

    def _require_alive(self) -> None:
        if not self.alive:
            raise ShardUnavailableError(
                f"monitor shard {self.shard_id} has no live primary "
                "(crashed; standby not yet promoted)")

    # ------------------------------------------------------------------
    # Registration / heartbeats / time
    # ------------------------------------------------------------------
    def register_member(self, agent: NodeAgent) -> None:
        self._members[agent.node_id] = agent
        for monitor in self.replicas():
            monitor.register_agent(agent)

    def adopt_foreign(self, agent: NodeAgent) -> None:
        self._foreign[agent.node_id] = agent
        for monitor in self.replicas():
            monitor.adopt_agent(agent)

    def ingest_heartbeat(self, report: HeartbeatReport) -> None:
        for monitor in self.replicas():
            monitor.ingest_heartbeat(report)

    def ingest_agent_heartbeat(self, agent: NodeAgent,
                               now_ns: Optional[int] = None) -> None:
        """Report-free heartbeat fold into every live replica.

        One shared timestamp across replicas, like the report path
        (defaults to the primary-side clock of the first replica).
        """
        replicas = self.replicas()
        if now_ns is None and replicas:
            now_ns = replicas[0].now_ns
        for monitor in replicas:
            monitor.ingest_agent_heartbeat(agent, now_ns)

    def advance_time(self, delta_ns: int) -> None:
        for monitor in self.replicas():
            monitor.advance_time(delta_ns)

    def reconcile_orphaned_releases(self, node_id: int) -> int:
        settled = 0
        for monitor in self.replicas():
            settled += monitor.reconcile_orphaned_releases(node_id)
        return settled

    # ------------------------------------------------------------------
    # Replicated allocation log
    # ------------------------------------------------------------------
    def _replicate_commit(self, allocation: Allocation) -> None:
        if self.standby is None:
            return
        # Spelled-out copy instead of dataclasses.replace(): this runs
        # once per commit and replace()'s field introspection showed up
        # in the sharded-MN profile.
        record = allocation.record
        self.standby.rat.add(AllocationRecord(
            requester=record.requester, donor=record.donor,
            kind=record.kind, amount=record.amount,
            allocation_id=record.allocation_id,
            created_at_ns=record.created_at_ns,
            released=record.released))
        member = self._members.get(allocation.donor)
        if member is not None:
            self.standby.ingest_agent_heartbeat(member)
        self.commits_replicated += 1

    def _replicate_release(self, allocation_id: int, donor: int) -> None:
        if self.standby is None:
            return
        try:
            self.standby.rat.release(allocation_id)
        except KeyError:
            pass
        member = self._members.get(donor)
        if member is not None:
            self.standby.ingest_agent_heartbeat(member)
        self.releases_replicated += 1

    def request_memory(self, requester: int, size_bytes: int,
                       donor: Optional[int] = None) -> Allocation:
        self._require_alive()
        allocation = self.primary.request_memory(requester, size_bytes,
                                                 donor=donor)
        self._replicate_commit(allocation)
        return allocation

    def request_accelerator(self, requester: int) -> Allocation:
        self._require_alive()
        allocation = self.primary.request_accelerator(requester)
        self._replicate_commit(allocation)
        return allocation

    def request_nic(self, requester: int) -> Allocation:
        self._require_alive()
        allocation = self.primary.request_nic(requester)
        self._replicate_commit(allocation)
        return allocation

    def release(self, allocation: Allocation) -> bool:
        """Apply a release, or buffer it while the primary is down.

        Returns True when applied immediately; False when buffered for
        promotion (the caller's grant is torn down either way -- the
        donor's bytes come back when the standby takes over).
        """
        if not self.alive:
            self.pending_releases.append(allocation.record.allocation_id)
            return False
        self.primary.release(allocation)
        self._replicate_release(allocation.record.allocation_id,
                                allocation.record.donor)
        return True

    def rat_release(self, allocation_id: int) -> AllocationRecord:
        """Table-level release (fault-handler write-off path)."""
        if self.alive:
            record = self.primary.rat.release(allocation_id)
            self._replicate_release(allocation_id, record.donor)
            return record
        for record in self.live.rat.active():
            if record.allocation_id == allocation_id:
                self.pending_releases.append(allocation_id)
                return record
        raise KeyError(f"allocation {allocation_id} is not active")

    # ------------------------------------------------------------------
    # Crash / promotion / standby rebuild
    # ------------------------------------------------------------------
    def crash_primary(self, now_ns: int) -> None:
        """The primary stops: ops fail typed until promotion."""
        if not self.alive:
            return
        self.alive = False
        self.crashed_at_ns = now_ns
        self.crashes += 1

    def promote_standby(self, now_ns: int) -> int:
        """Promote the standby to primary; returns the failover latency.

        The promoted replica refreshes its RRT/TST from the live member
        agents (ground truth survives the MN crash), then the releases
        buffered during the outage are applied through its replicated
        RAT -- the allocations-lost ledger counts any committed record
        the log failed to carry over (zero by construction).
        """
        if self.alive or self.standby is None:
            raise ShardUnavailableError(
                f"monitor shard {self.shard_id} has nothing to promote")
        promoted = self.standby
        self.standby = None
        if promoted.now_ns < now_ns:
            promoted.advance_time(now_ns - promoted.now_ns)
        stale = set(promoted.dead_nodes())
        for node_id in self.nodes:
            if node_id in stale:
                continue
            promoted.ingest_heartbeat(
                self._members[node_id].heartbeat(promoted.now_ns))
        crashed_ids = {record.allocation_id
                       for record in self.primary.rat.active()}
        replicated_ids = {record.allocation_id
                          for record in promoted.rat.active()}
        self.allocations_recovered += len(crashed_ids & replicated_ids)
        self.allocations_lost += len(crashed_ids - replicated_ids)
        self.primary = promoted
        self.alive = True
        latency = now_ns - (self.crashed_at_ns or now_ns)
        self.failover_latency_ns.append(latency)
        self.crashed_at_ns = None
        for allocation_id in self.pending_releases:
            if self._release_by_id(promoted, allocation_id):
                self.releases_recovered += 1
            else:
                self.release_misses += 1
        self.pending_releases = []
        self.promotions += 1
        return latency

    @staticmethod
    def _release_by_id(monitor: MonitorNode, allocation_id: int) -> bool:
        for record in monitor.rat.active():
            if record.allocation_id == allocation_id:
                monitor.release(Allocation(record=record, donor=record.donor,
                                           amount=record.amount, hops=0))
                return True
        return False

    def rejoin_standby(self) -> None:
        """Rebuild the standby from the current primary's books.

        The crashed ex-primary's host rejoins as the new standby after
        its outage: agents re-register (their heartbeats rebuild the
        RRT/TST) and the active RAT is copied as the new replication
        base.  No-op when a standby already exists.
        """
        self._require_alive()
        if self.standby is not None:
            return
        standby = self._fresh_monitor()
        standby.advance_time(self.primary.now_ns)
        for node_id in sorted(self._foreign):
            standby.adopt_agent(self._foreign[node_id])
        for node_id in self.nodes:
            standby.register_agent(self._members[node_id])
        for record in sorted(self.primary.rat.active(),
                             key=lambda rec: rec.allocation_id):
            standby.rat.add(replace(record))
        self.standby = standby
        self.standbys_rebuilt += 1


# ----------------------------------------------------------------------
# Aggregate table views
# ----------------------------------------------------------------------
class _ShardedRRT:
    """Fleet-wide RRT view: routes writes, merges reads across shards."""

    def __init__(self, coordinator: "ShardCoordinator"):
        self._coordinator = coordinator

    def get(self, node_id: int, kind: ResourceKind) -> Optional[ResourceRecord]:
        shard = self._coordinator.shard_for_node(node_id, strict=False)
        if shard is None:
            return None
        return shard.live.rrt.get(node_id, kind)

    def register(self, record: ResourceRecord) -> None:
        shard = self._coordinator.shard_for_node(record.node_id)
        for monitor in shard.replicas():
            monitor.rrt.register(record)

    def records_of_kind(self, kind: ResourceKind) -> List[ResourceRecord]:
        records: List[ResourceRecord] = []
        for shard in self._coordinator.shards:
            records.extend(shard.live.rrt.records_of_kind(kind))
        return sorted(records, key=lambda record: record.node_id)

    def total_available(self, kind: ResourceKind) -> int:
        return sum(record.available for record in self.records_of_kind(kind))

    def nodes(self) -> List[int]:
        seen: Set[int] = set()
        for shard in self._coordinator.shards:
            seen.update(shard.live.rrt.nodes())
        return sorted(seen)

    def stale_nodes(self, now_ns: int, timeout_ns: int) -> List[int]:
        stale: Set[int] = set()
        for shard in self._coordinator.shards:
            stale.update(shard.live.rrt.stale_nodes(now_ns, timeout_ns))
        return sorted(stale)


class _ShardedRAT:
    """Fleet-wide RAT view: merges shard books, routes releases."""

    def __init__(self, coordinator: "ShardCoordinator"):
        self._coordinator = coordinator

    def active(self) -> List[AllocationRecord]:
        records: List[AllocationRecord] = []
        for shard in self._coordinator.shards:
            records.extend(shard.live.rat.active())
        return sorted(records, key=lambda record: record.allocation_id)

    def active_for_requester(self, requester: int) -> List[AllocationRecord]:
        return [record for record in self.active()
                if record.requester == requester]

    def active_for_donor(self, donor: int) -> List[AllocationRecord]:
        return [record for record in self.active()
                if record.donor == donor]

    def allocated_amount(self, donor: int, kind: ResourceKind) -> int:
        shard = self._coordinator.shard_for_node(donor, strict=False)
        if shard is None:
            return 0
        return shard.live.rat.allocated_amount(donor, kind)

    def release(self, allocation_id: int) -> AllocationRecord:
        for shard in self._coordinator.shards:
            for record in shard.live.rat.active():
                if record.allocation_id == allocation_id:
                    released = shard.rat_release(allocation_id)
                    self._coordinator.unmatch_commit(allocation_id)
                    return released
        raise KeyError(f"allocation {allocation_id} is not active")


class _ShardedTST:
    """Fleet-wide TST view: fans reports out, merges status reads."""

    def __init__(self, coordinator: "ShardCoordinator"):
        self._coordinator = coordinator
        self._master = TopologyStatusTable()

    def report(self, node_a: int, node_b: int, status: LinkStatus,
               now_ns: int = 0) -> None:
        self._master.report(node_a, node_b, status, now_ns=now_ns)
        for shard in self._coordinator.shards:
            for monitor in shard.replicas():
                monitor.tst.report(node_a, node_b, status, now_ns=now_ns)

    def _known(self) -> Dict[Tuple[int, int], LinkStatus]:
        # Shards first, master (externally reported faults) wins ties.
        merged: Dict[Tuple[int, int], LinkStatus] = {}
        for shard in self._coordinator.shards:
            for node_a, node_b, status in shard.live.tst.links():
                merged[(node_a, node_b)] = status
        for node_a, node_b, status in self._master.links():
            merged[(node_a, node_b)] = status
        return merged

    def status(self, node_a: int, node_b: int) -> LinkStatus:
        key = (node_a, node_b) if node_a <= node_b else (node_b, node_a)
        return self._known().get(key, LinkStatus.DOWN)

    def is_usable(self, node_a: int, node_b: int) -> bool:
        return self.status(node_a, node_b) in (LinkStatus.UP,
                                               LinkStatus.DEGRADED)

    def links(self) -> List[Tuple[int, int, LinkStatus]]:
        merged = self._known()
        return [(node_a, node_b, merged[(node_a, node_b)])
                for node_a, node_b in sorted(merged)]


class ShardCoordinator:
    """Routes requests to owning shards and merges cross-shard plans."""

    def __init__(self, shards: List[MonitorShard], topology: Topology,
                 policy: DonorSelectionPolicy, mn_service_ns: int,
                 route_ns: int, spill_forward_ns: int):
        self.shards = shards
        self.topology = topology
        self.policy = policy
        #: Modelled serial planning cost per request on one shard.
        self.mn_service_ns = mn_service_ns
        #: Modelled coordinator routing cost per request.
        self.route_ns = route_ns
        #: Modelled cost of forwarding one cross-leaf spill segment.
        self.spill_forward_ns = spill_forward_ns
        self._shard_of: Dict[int, int] = {}  # simlint: disable=SIM006 -- one entry per compute node, fixed at build
        for shard in shards:
            for node in shard.nodes:
                self._shard_of[node] = shard.shard_id
        self._inflight: Dict[int, _InflightTicket] = {}  # simlint: disable=SIM006 -- drained on completion/replay
        # Coordinator ledger.
        self.requests_routed = 0
        self.spill_forwards = 0
        self.requests_planned = 0
        self.tickets_completed = 0
        self.tickets_replayed = 0
        self.replayed_chunks_unwound = 0
        self.last_plan_makespan_ns = 0
        self.total_plan_makespan_ns = 0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_for_node(self, node_id: int,
                       strict: bool = True) -> Optional[MonitorShard]:
        index = self._shard_of.get(node_id)
        if index is None:
            if strict:
                raise AllocationError(
                    f"node {node_id} is not owned by any monitor shard")
            return None
        return self.shards[index]

    def require_quorum(self) -> None:
        """Batch planning needs every shard's primary up."""
        down = [shard.shard_id for shard in self.shards if not shard.alive]
        if down:
            raise ShardUnavailableError(
                f"monitor shard(s) {down} have no live primary; "
                "batch planning waits for failover")

    # ------------------------------------------------------------------
    # Cross-shard batch planning
    # ------------------------------------------------------------------
    def _availability(self) -> Dict[int, Dict[int, int]]:
        """Working copy of advertised idle memory, per shard."""
        available: Dict[int, Dict[int, int]] = {}
        for shard in self.shards:
            if not shard.alive:
                continue
            available[shard.shard_id] = {
                record.node_id: record.available
                for record in shard.live.rrt.records_of_kind(
                    ResourceKind.MEMORY)
            }
        return available

    def _foreign_candidates(self, requester: int, home: int,
                            available: Dict[int, Dict[int, int]],
                            minimum: int) -> List[ResourceRecord]:
        """Foreign-shard memory records with working availability."""
        candidates: List[ResourceRecord] = []
        for shard in self.shards:
            if shard.shard_id == home or shard.shard_id not in available:
                continue
            shard_avail = available[shard.shard_id]
            for record in shard.live.rrt.records_of_kind(ResourceKind.MEMORY):
                if (record.node_id != requester
                        and shard_avail.get(record.node_id, 0) >= minimum):
                    candidates.append(record)
        return candidates

    def plan_one(self, requester: int, size_bytes: int,
                 available: Dict[int, Dict[int, int]],
                 rat) -> Tuple[List[tuple], Set[int]]:
        """Plan one request: home shard first, cross-leaf spill after.

        Mirrors the single-MN semantics (one covering donor preferred,
        greedy spill otherwise) with the donor walk widened across
        shards: the home shard's policy-ordered donors are consulted
        first, then foreign donors -- policy-ordered over the merged
        candidate list -- cover a single-donor miss or the remainder.
        Returns ``(plan, shards_used)``; raises
        :class:`AllocationError` on an uncoverable shortfall (working
        copies untouched by the caller on failure).
        """
        home_shard = self.shard_for_node(requester)
        home = home_shard.shard_id
        if home not in available:
            raise ShardUnavailableError(
                f"monitor shard {home} (home of node {requester}) has no "
                "live primary")
        home_avail = available[home]
        home_monitor = home_shard.live
        single = next(
            (record for record
             in home_monitor._eligible_memory_donors(requester, home_avail)
             if home_avail[record.node_id] >= size_bytes),
            None)
        if single is not None:
            return [(single.node_id, size_bytes)], {home}
        # Cross-leaf single donor before any multi-donor split.
        for record in self.policy.order(
                requester, ResourceKind.MEMORY,
                self._foreign_candidates(requester, home, available,
                                         size_bytes),
                self.topology, rat):
            owner = self.shard_for_node(record.node_id)
            if owner.live._donor_eligible(requester, record):
                return [(record.node_id, size_bytes)], {home, owner.shard_id}
        # Greedy spill: drain the home shard, forward the remainder.
        plan, remaining = home_monitor.partial_memory_plan(
            requester, size_bytes, home_avail)
        used: Set[int] = {home}
        if remaining > 0:
            for record in self.policy.order(
                    requester, ResourceKind.MEMORY,
                    self._foreign_candidates(requester, home, available, 1),
                    self.topology, rat):
                if remaining <= 0:
                    break
                owner = self.shard_for_node(record.node_id)
                if not owner.live._donor_eligible(requester, record):
                    continue
                take = min(available[owner.shard_id][record.node_id],
                           remaining)
                if take <= 0:
                    continue
                plan.append((record.node_id, take))
                used.add(owner.shard_id)
                remaining -= take
        if remaining > 0:
            raise AllocationError(
                f"fleet cannot cover {size_bytes} bytes of memory for node "
                f"{requester}: {remaining} bytes short across "
                f"{len(plan)} donors in {len(used)} shard(s)")
        return plan, used

    def plan_batch(self, batch: List[QueuedRequest],
                   rat) -> List[BatchPlanEntry]:
        """Plan a whole batch across shards without double-booking.

        One working availability copy per shard is shared by the whole
        batch, so bytes planned for an earlier ticket -- on any shard --
        are gone for later ones.  Successful plans are registered as
        in-flight tickets for crash replay; the modelled makespan
        (coordinator serial cost + busiest shard) is accumulated for
        the throughput sweeps.
        """
        self.require_quorum()
        available = self._availability()
        busy = {shard.shard_id: 0 for shard in self.shards}
        route_total_ns = 0
        spill_total_ns = 0
        entries: List[BatchPlanEntry] = []
        for request in batch:
            route_total_ns += self.route_ns
            plan, used = self.plan_one(request.requester, request.size_bytes,
                                       available, rat)
            home = self._shard_of[request.requester]
            busy[home] += self.mn_service_ns
            for shard_id in sorted(used - {home}):
                busy[shard_id] += self.mn_service_ns
                spill_total_ns += self.spill_forward_ns
                self.spill_forwards += 1
            for donor, take in plan:
                available[self._shard_of[donor]][donor] -= take
            entries.append(BatchPlanEntry(ticket=request.ticket,
                                          requester=request.requester,
                                          plan=plan))
        for entry, request in zip(entries, batch):
            self._inflight[entry.ticket] = _InflightTicket(
                request=request,
                chunks=[[donor, take, None] for donor, take in entry.plan])
        makespan = (route_total_ns + spill_total_ns
                    + max(busy.values(), default=0))
        self.last_plan_makespan_ns = makespan
        self.total_plan_makespan_ns += makespan
        self.requests_planned += len(batch)
        return entries

    # ------------------------------------------------------------------
    # In-flight ticket tracking (crash replay)
    # ------------------------------------------------------------------
    def match_commit(self, requester: int, donor: int, amount: int,
                     allocation_id: int) -> None:
        """Bind a pinned per-chunk allocation to its in-flight ticket."""
        for ticket in sorted(self._inflight):
            entry = self._inflight[ticket]
            if entry.request.requester != requester:
                continue
            for chunk in entry.chunks:
                if (chunk[0] == donor and chunk[1] == amount
                        and chunk[2] is None):
                    chunk[2] = allocation_id
                    return

    def unmatch_commit(self, allocation_id: int) -> None:
        """A chunk's allocation was released (batch unwind)."""
        for ticket in sorted(self._inflight):
            for chunk in self._inflight[ticket].chunks:
                if chunk[2] == allocation_id:
                    chunk[2] = None
                    return

    def complete_ticket(self, ticket: int) -> None:
        if self._inflight.pop(ticket, None) is not None:
            self.tickets_completed += 1

    def replay_inflight(self) -> List[QueuedRequest]:
        """Re-queue every unconfirmed ticket exactly once (post-promotion).

        Chunks still holding a committed allocation (the caller never
        unwound them) are released through the owning shard first, so
        the replayed plan starts from settled books.  Returns the
        requests in original ticket order; the facade puts them back at
        the head of its queue under their original tickets.
        """
        replayed: List[QueuedRequest] = []
        for ticket in sorted(self._inflight):
            entry = self._inflight[ticket]
            for donor, _amount, allocation_id in entry.chunks:
                if allocation_id is None:
                    continue
                shard = self.shard_for_node(donor)
                if MonitorShard._release_by_id(shard.live, allocation_id):
                    shard._replicate_release(allocation_id, donor)
                    self.replayed_chunks_unwound += 1
            replayed.append(entry.request)
        self._inflight.clear()
        self.tickets_replayed += len(replayed)
        return replayed

    @property
    def inflight_tickets(self) -> List[int]:
        return sorted(self._inflight)


class ShardedMonitor:
    """Drop-in MonitorNode facade over per-leaf replicated shards."""

    def __init__(self, topology: Topology, num_shards: Optional[int] = None,
                 heartbeat_timeout_ns: int = 5_000_000_000,
                 policy: Optional[DonorSelectionPolicy] = None,
                 mn_service_ns: int = 2_000, route_ns: int = 150,
                 spill_forward_ns: int = 400):
        self.topology = topology
        self._policy = policy or DistanceFirstPolicy()
        self._heartbeat_timeout_ns = heartbeat_timeout_ns
        groups = leaf_groups(topology)
        if num_shards is None:
            num_shards = len(groups)
        if num_shards < 1:
            raise ValueError("a sharded monitor needs at least one shard")
        num_shards = min(num_shards, len(groups))
        shards: List[MonitorShard] = []
        for shard_id in range(num_shards):
            # Contiguous leaf groups per shard: leaves i*G/S .. keep
            # same-leaf nodes in one shard so the home shard serves
            # same-leaf donors without forwarding.
            nodes: List[int] = []
            for index, group in enumerate(groups):
                if index * num_shards // len(groups) == shard_id:
                    nodes.extend(group)
            shards.append(MonitorShard(shard_id, topology, nodes,
                                       self._policy, heartbeat_timeout_ns))
        self.coordinator = ShardCoordinator(
            shards, topology, self._policy, mn_service_ns=mn_service_ns,
            route_ns=route_ns, spill_forward_ns=spill_forward_ns)
        self.rrt = _ShardedRRT(self.coordinator)
        self.rat = _ShardedRAT(self.coordinator)
        self.tst = _ShardedTST(self.coordinator)
        self.now_ns = 0
        self.requests_handled = 0
        self._request_queue: List[QueuedRequest] = []
        self._next_ticket = 0

    # ------------------------------------------------------------------
    # Shard topology
    # ------------------------------------------------------------------
    @property
    def shards(self) -> List[MonitorShard]:
        return self.coordinator.shards

    @property
    def num_shards(self) -> int:
        return len(self.coordinator.shards)

    @property
    def shard_ids(self) -> List[int]:
        return [shard.shard_id for shard in self.coordinator.shards]

    def shard_of(self, node_id: int) -> int:
        return self.coordinator.shard_for_node(node_id).shard_id

    # ------------------------------------------------------------------
    # MonitorNode facade: knobs
    # ------------------------------------------------------------------
    @property
    def policy(self) -> DonorSelectionPolicy:
        return self._policy

    @policy.setter
    def policy(self, value: DonorSelectionPolicy) -> None:
        self._policy = value
        self.coordinator.policy = value
        for shard in self.coordinator.shards:
            shard.policy = value
            for monitor in shard.replicas():
                monitor.policy = value

    @property
    def heartbeat_timeout_ns(self) -> int:
        return self._heartbeat_timeout_ns

    @heartbeat_timeout_ns.setter
    def heartbeat_timeout_ns(self, value: int) -> None:
        self._heartbeat_timeout_ns = value
        for shard in self.coordinator.shards:
            shard.heartbeat_timeout_ns = value
            for monitor in shard.replicas():
                monitor.heartbeat_timeout_ns = value

    # ------------------------------------------------------------------
    # MonitorNode facade: registration / heartbeats / time
    # ------------------------------------------------------------------
    def register_agent(self, agent: NodeAgent) -> None:
        """Register with the owning shard; other shards adopt the agent."""
        owner = self.coordinator.shard_for_node(agent.node_id)
        for shard in self.coordinator.shards:
            if shard.shard_id == owner.shard_id:
                shard.register_member(agent)
            else:
                shard.adopt_foreign(agent)

    @property
    def registered_nodes(self) -> List[int]:
        nodes: List[int] = []
        for shard in self.coordinator.shards:
            nodes.extend(sorted(shard._members))
        return sorted(nodes)

    def agent(self, node_id: int) -> NodeAgent:
        return self.coordinator.shard_for_node(node_id).live.agent(node_id)

    def advance_time(self, delta_ns: int) -> None:
        if delta_ns < 0:
            raise ValueError("time cannot move backwards")
        self.now_ns += delta_ns
        for shard in self.coordinator.shards:
            shard.advance_time(delta_ns)

    def ingest_heartbeat(self, report: HeartbeatReport) -> None:
        self.coordinator.shard_for_node(report.node_id).ingest_heartbeat(
            report)

    def ingest_agent_heartbeat(self, agent: NodeAgent,
                               now_ns: Optional[int] = None) -> None:
        self.coordinator.shard_for_node(agent.node_id).ingest_agent_heartbeat(
            agent, self.now_ns if now_ns is None else now_ns)

    def collect_heartbeats(self) -> None:
        for node_id in self.registered_nodes:
            shard = self.coordinator.shard_for_node(node_id)
            shard.ingest_agent_heartbeat(shard._members[node_id],
                                         self.now_ns)

    def dead_nodes(self) -> List[int]:
        dead: Set[int] = set()
        for shard in self.coordinator.shards:
            dead.update(shard.live.dead_nodes())
        return sorted(dead)

    def reconcile_orphaned_releases(self, node_id: int) -> int:
        return self.coordinator.shard_for_node(
            node_id).reconcile_orphaned_releases(node_id)

    @property
    def orphaned_releases(self) -> int:
        return sum(monitor.orphaned_releases
                   for shard in self.coordinator.shards
                   for monitor in shard.replicas())

    @property
    def handshake_retries(self) -> int:
        return sum(shard.primary.handshake_retries
                   for shard in self.coordinator.shards)

    # ------------------------------------------------------------------
    # MonitorNode facade: batched request queue
    # ------------------------------------------------------------------
    def queue_memory_request(self, requester: int, size_bytes: int) -> int:
        if self.coordinator.shard_for_node(requester, strict=False) is None:
            raise AllocationError(
                f"requester node {requester} is not registered")
        if size_bytes <= 0:
            raise AllocationError("requested amount must be positive")
        ticket = self._next_ticket
        self._next_ticket += 1
        self._request_queue.append(
            QueuedRequest(ticket=ticket, requester=requester,
                          size_bytes=size_bytes))
        return ticket

    @property
    def queued_requests(self) -> int:
        return len(self._request_queue)

    def dequeue_tickets(self, tickets) -> int:
        drop = set(tickets)
        before = len(self._request_queue)
        self._request_queue = [queued for queued in self._request_queue
                               if queued.ticket not in drop]
        return before - len(self._request_queue)

    def plan_queued_requests(self) -> List[BatchPlanEntry]:
        """Plan the queue across shards (quorum required).

        A crashed shard fails the whole call typed
        (:class:`ShardUnavailableError`) with the queue untouched, so
        callers retry after failover without losing a ticket.  On a
        capacity shortfall the untouched tickets are re-queued exactly
        like the single-instance MN (:class:`BatchPlanError`).
        """
        self.coordinator.require_quorum()
        batch, self._request_queue = self._request_queue, []
        try:
            return self.coordinator.plan_batch(batch, self.rat)
        except ShardUnavailableError:
            self._request_queue = batch + self._request_queue
            raise
        except BatchPlanError:
            raise
        except AllocationError as error:
            failed = self._failed_request(batch, error)
            untouched = [queued for queued in batch
                         if queued.ticket != failed.ticket]
            self._request_queue = untouched + self._request_queue
            raise BatchPlanError(
                f"batched request (ticket {failed.ticket}): {error}",
                failed_request=failed,
                requeued_tickets=[q.ticket for q in untouched],
            ) from None

    @staticmethod
    def _failed_request(batch: List[QueuedRequest],
                        error: AllocationError) -> QueuedRequest:
        # plan_batch raises on the request it was planning; recover it
        # from the message's requester id (deterministic format).
        text = str(error)
        for queued in batch:
            if f"for node {queued.requester}:" in text:
                return queued
        return batch[-1]

    def complete_ticket(self, ticket: int) -> None:
        self.coordinator.complete_ticket(ticket)

    def memory_spill_plan(self, requester: int,
                          size_bytes: int) -> List[tuple]:
        """Cross-shard spill plan against live advertised idle memory."""
        if size_bytes <= 0:
            raise AllocationError("requested amount must be positive")
        plan, _used = self.coordinator.plan_one(
            requester, size_bytes, self.coordinator._availability(), self.rat)
        return plan

    # ------------------------------------------------------------------
    # MonitorNode facade: allocation entry points
    # ------------------------------------------------------------------
    def request_memory(self, requester: int, size_bytes: int,
                       donor: Optional[int] = None) -> Allocation:
        """Route an allocation: pinned by donor's shard, else home-first."""
        self.requests_handled += 1
        if donor is not None:
            shard = self.coordinator.shard_for_node(donor)
            allocation = shard.request_memory(requester, size_bytes,
                                              donor=donor)
            self.coordinator.match_commit(requester, donor, size_bytes,
                                          allocation.record.allocation_id)
            return allocation
        home = self.coordinator.shard_for_node(requester)
        if home.alive:
            try:
                return home.request_memory(requester, size_bytes)
            except ShardUnavailableError:
                raise
            except AllocationError:
                pass
        # Forward cross-leaf: policy-ordered foreign donors, each tried
        # as a pinned request (the owning shard re-validates and walks
        # its own handshake path).
        available = self.coordinator._availability()
        candidates = self.coordinator._foreign_candidates(
            requester, home.shard_id, available, size_bytes)
        for record in self._policy.order(requester, ResourceKind.MEMORY,
                                         candidates, self.topology, self.rat):
            owner = self.coordinator.shard_for_node(record.node_id)
            try:
                return owner.request_memory(requester, size_bytes,
                                            donor=record.node_id)
            except ShardUnavailableError:
                continue
            except AllocationError:
                continue
        raise AllocationError(
            f"no shard has {size_bytes} bytes of memory available for "
            f"node {requester}")

    def _request_unit(self, requester: int, method: str) -> Allocation:
        home = self.coordinator.shard_for_node(requester)
        order = [home] + [shard for shard in self.coordinator.shards
                          if shard.shard_id != home.shard_id]
        refused: Optional[AllocationError] = None
        for shard in order:
            if not shard.alive:
                continue
            try:
                return getattr(shard, method)(requester)
            except ShardUnavailableError:
                continue
            except AllocationError as error:
                refused = error
        raise refused or AllocationError(
            f"no shard could serve {method} for node {requester}")

    def request_accelerator(self, requester: int) -> Allocation:
        self.requests_handled += 1
        return self._request_unit(requester, "request_accelerator")

    def request_nic(self, requester: int) -> Allocation:
        self.requests_handled += 1
        return self._request_unit(requester, "request_nic")

    def release(self, allocation: Allocation) -> None:
        """Route a release to the donor's shard (buffered while down)."""
        shard = self.coordinator.shard_for_node(allocation.record.donor)
        shard.release(allocation)
        self.coordinator.unmatch_commit(allocation.record.allocation_id)

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def shard_alive(self, shard_id: int) -> bool:
        return self.coordinator.shards[shard_id].alive

    def has_standby(self, shard_id: int) -> bool:
        return self.coordinator.shards[shard_id].standby is not None

    def crash_primary(self, shard_id: int) -> None:
        """Inject a shard-primary crash (the ``mn_crash`` fault)."""
        self.coordinator.shards[shard_id].crash_primary(self.now_ns)

    def rejoin_standby(self, shard_id: int) -> None:
        self.coordinator.shards[shard_id].rejoin_standby()

    def check_failover(self) -> List[Tuple[int, int]]:
        """Promote every detectable crashed shard (heartbeat-pump hook).

        Returns ``[(shard_id, failover_latency_ns), ...]`` for the
        promotions performed.  After the last promotion the in-flight
        tickets are replayed: re-queued at the head of the batch queue
        under their original tickets, exactly once.
        """
        promoted: List[Tuple[int, int]] = []
        for shard in self.coordinator.shards:
            if not shard.alive and shard.standby is not None:
                latency = shard.promote_standby(self.now_ns)
                promoted.append((shard.shard_id, latency))
        if promoted:
            replayed = self.coordinator.replay_inflight()
            self._request_queue = replayed + self._request_queue
        return promoted

    @property
    def tickets_replayed(self) -> int:
        return self.coordinator.tickets_replayed

    @property
    def allocations_lost(self) -> int:
        return sum(shard.allocations_lost for shard in self.coordinator.shards)

    @property
    def allocations_recovered(self) -> int:
        return sum(shard.allocations_recovered
                   for shard in self.coordinator.shards)

    @property
    def failover_latency_ns(self) -> Dict[int, List[int]]:
        return {shard.shard_id: list(shard.failover_latency_ns)
                for shard in self.coordinator.shards
                if shard.failover_latency_ns}

    def ledger_balanced(self) -> bool:
        """Every donor's agent ledger matches the fleet's active RAT."""
        donated: Dict[int, int] = {}
        for record in self.rat.active():
            if record.kind is ResourceKind.MEMORY:
                donated[record.donor] = (donated.get(record.donor, 0)
                                         + record.amount)
        for node_id in self.registered_nodes:
            agent = self.agent(node_id)
            if agent.donated_bytes != donated.get(node_id, 0):
                return False
        return True

    def stats_dict(self) -> Dict[str, object]:
        """Canonical (JSON-serialisable) shard/failover snapshot."""
        coordinator = self.coordinator
        return {
            "num_shards": self.num_shards,
            "shard_nodes": {str(shard.shard_id): list(shard.nodes)
                            for shard in coordinator.shards},
            "requests_handled": self.requests_handled,
            "requests_planned": coordinator.requests_planned,
            "spill_forwards": coordinator.spill_forwards,
            "tickets_completed": coordinator.tickets_completed,
            "tickets_replayed": coordinator.tickets_replayed,
            "replayed_chunks_unwound": coordinator.replayed_chunks_unwound,
            "total_plan_makespan_ns": coordinator.total_plan_makespan_ns,
            "crashes": sum(shard.crashes for shard in coordinator.shards),
            "promotions": sum(shard.promotions
                              for shard in coordinator.shards),
            "standbys_rebuilt": sum(shard.standbys_rebuilt
                                    for shard in coordinator.shards),
            "commits_replicated": sum(shard.commits_replicated
                                      for shard in coordinator.shards),
            "releases_recovered": sum(shard.releases_recovered
                                      for shard in coordinator.shards),
            "release_misses": sum(shard.release_misses
                                  for shard in coordinator.shards),
            "allocations_recovered": self.allocations_recovered,
            "allocations_lost": self.allocations_lost,
            "failover_latency_ns": {
                str(shard_id): latencies for shard_id, latencies
                in sorted(self.failover_latency_ns.items())},
            "orphaned_releases": self.orphaned_releases,
        }
