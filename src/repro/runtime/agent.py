"""Per-node daemon agent.

A daemon process on every node collects resource-availability
information and reports it to the Monitor Node periodically; the report
doubles as a heartbeat from which the MN infers node liveness
(Section 5.3).  The agent also executes the donor side of the sharing
handshake: when asked to hot-remove memory it checks that the memory is
still actually free -- MN records can be stale -- and refuses
otherwise, triggering the MN's retry path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.runtime.tables import LinkStatus, ResourceKind


@dataclass
class HeartbeatReport:
    """One heartbeat message from an agent to the Monitor Node."""

    node_id: int
    timestamp_ns: int
    #: Available amount per resource kind (bytes for memory, units else).
    available: Dict[ResourceKind, int] = field(default_factory=dict)
    #: Capacity per resource kind.
    capacity: Dict[ResourceKind, int] = field(default_factory=dict)
    #: Link status towards each fabric neighbour.
    link_status: Dict[int, LinkStatus] = field(default_factory=dict)


class NodeAgent:
    """Donor/recipient-side software agent for one node."""

    def __init__(self, node_id: int, memory_capacity_bytes: int,
                 num_accelerators: int = 0, num_nics: int = 0,
                 neighbors: Tuple[int, ...] = (),
                 reserve_bytes: int = 0):
        if memory_capacity_bytes <= 0:
            raise ValueError("memory capacity must be positive")
        if reserve_bytes < 0 or reserve_bytes > memory_capacity_bytes:
            raise ValueError("reserve must be within [0, capacity]")
        self.node_id = node_id
        self.memory_capacity_bytes = memory_capacity_bytes
        self.reserve_bytes = reserve_bytes
        self.num_accelerators = num_accelerators
        self.num_nics = num_nics
        self.neighbors = tuple(neighbors)
        #: Memory consumed by local workloads (updated by the node).
        self.local_memory_used_bytes = 0
        #: Memory currently donated to other nodes.
        self.donated_bytes = 0
        self.accelerators_donated = 0
        self.nics_donated = 0
        self._link_status: Dict[int, LinkStatus] = {
            neighbor: LinkStatus.UP for neighbor in self.neighbors
        }
        #: Memoized sorted (neighbor, status) pairs; link state changes
        #: orders of magnitude less often than heartbeats read it.
        self._link_reports: Optional[List[Tuple[int, LinkStatus]]] = None

    # ------------------------------------------------------------------
    # Local state updates
    # ------------------------------------------------------------------
    def set_local_usage(self, used_bytes: int) -> None:
        """Record how much memory local workloads are currently using."""
        if used_bytes < 0:
            raise ValueError("usage must be non-negative")
        self.local_memory_used_bytes = used_bytes

    def set_link_status(self, neighbor: int, status: LinkStatus) -> None:
        self._link_status[neighbor] = status
        self._link_reports = None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def idle_memory_bytes(self) -> int:
        """Memory the agent is willing to offer for donation."""
        committed = (self.local_memory_used_bytes + self.donated_bytes
                     + self.reserve_bytes)
        return max(0, self.memory_capacity_bytes - committed)

    def idle_accelerators(self) -> int:
        return max(0, self.num_accelerators - self.accelerators_donated)

    def idle_nics(self) -> int:
        return max(0, self.num_nics - self.nics_donated)

    def link_reports(self) -> List[Tuple[int, LinkStatus]]:
        """(neighbor, status) pairs in sorted-neighbor order.

        The same deterministic fold order ``ingest_heartbeat`` imposes
        on a report's link table; the fused agent-ingest path on the
        Monitor Node reads this instead of building a report.  The list
        is memoized until the next ``set_link_status``; callers must
        not mutate it.
        """
        reports = self._link_reports
        if reports is None:
            status = self._link_status
            reports = self._link_reports = [
                (neighbor, status[neighbor]) for neighbor in sorted(status)]
        return reports

    def heartbeat(self, now_ns: int) -> HeartbeatReport:
        """Build the periodic availability / link-status report."""
        return HeartbeatReport(
            node_id=self.node_id,
            timestamp_ns=now_ns,
            available={
                ResourceKind.MEMORY: self.idle_memory_bytes(),
                ResourceKind.ACCELERATOR: self.idle_accelerators(),
                ResourceKind.NIC: self.idle_nics(),
            },
            capacity={
                ResourceKind.MEMORY: self.memory_capacity_bytes,
                ResourceKind.ACCELERATOR: self.num_accelerators,
                ResourceKind.NIC: self.num_nics,
            },
            link_status=dict(self._link_status),
        )

    # ------------------------------------------------------------------
    # Donor-side handshake
    # ------------------------------------------------------------------
    def handle_hot_remove(self, size_bytes: int) -> bool:
        """Donate ``size_bytes`` if still free; False rejects (stale record)."""
        if size_bytes <= 0:
            raise ValueError("hot-remove size must be positive")
        if size_bytes > self.idle_memory_bytes():
            return False
        self.donated_bytes += size_bytes
        return True

    def handle_hot_add_back(self, size_bytes: int) -> None:
        """Reclaim previously donated memory after a stop-sharing."""
        if size_bytes <= 0 or size_bytes > self.donated_bytes:
            raise ValueError("invalid reclaim size")
        self.donated_bytes -= size_bytes

    def handle_accelerator_grant(self) -> bool:
        if self.idle_accelerators() <= 0:
            return False
        self.accelerators_donated += 1
        return True

    def handle_accelerator_release(self) -> None:
        if self.accelerators_donated <= 0:
            raise ValueError("no donated accelerators to release")
        self.accelerators_donated -= 1

    def handle_nic_grant(self) -> bool:
        if self.idle_nics() <= 0:
            return False
        self.nics_donated += 1
        return True

    def handle_nic_release(self) -> None:
        if self.nics_donated <= 0:
            raise ValueError("no donated NICs to release")
        self.nics_donated -= 1
