"""Fault handling for the resource-sharing runtime.

The paper leaves fault containment as future work but names the
ingredients: heartbeats let the Monitor Node infer node status, and the
Topology Status Table tracks link health from agent reports.  This
module implements the recovery actions on top of those tables:

* **link failures** -- when a link goes down, allocations whose
  requester-to-donor path used that link are flagged; the recovery plan
  either re-routes (if another path exists) or re-allocates from a
  different donor.
* **node failures** -- when a node's heartbeats stop, every allocation
  it is involved in (as donor or requester) is revoked, and its donated
  resources are written off until it returns.

Recovery is expressed as a :class:`RecoveryPlan` so callers (and tests)
can inspect exactly what the runtime decided to do.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import networkx as nx

from repro.runtime.monitor import AllocationError, MonitorNode
from repro.runtime.tables import AllocationRecord, LinkStatus, ResourceKind


class RecoveryAction(enum.Enum):
    """What the runtime decided to do about one affected allocation."""

    UNAFFECTED = "unaffected"
    REROUTE = "reroute"
    REALLOCATE = "reallocate"
    REVOKE = "revoke"


@dataclass
class RecoveryStep:
    """One allocation's recovery decision."""

    allocation: AllocationRecord
    action: RecoveryAction
    #: New donor when the action is REALLOCATE.
    new_donor: Optional[int] = None
    #: Alternate path when the action is REROUTE.
    new_path: Optional[List[int]] = None


@dataclass
class RecoveryPlan:
    """The full outcome of handling one fault event."""

    event: str
    steps: List[RecoveryStep] = field(default_factory=list)

    def affected(self) -> List[RecoveryStep]:
        return [step for step in self.steps
                if step.action is not RecoveryAction.UNAFFECTED]

    def count(self, action: RecoveryAction) -> int:
        return sum(1 for step in self.steps if step.action is action)


class FaultHandler:
    """Implements link- and node-failure recovery over a MonitorNode."""

    def __init__(self, monitor: MonitorNode):
        self.monitor = monitor
        self.events_handled = 0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _path_uses_link(self, requester: int, donor: int,
                        link: Tuple[int, int]) -> bool:
        path = self.monitor.topology.shortest_path(requester, donor)
        links = {tuple(sorted(pair)) for pair in zip(path, path[1:])}
        return tuple(sorted(link)) in links

    def _alternate_path(self, requester: int, donor: int,
                        down_link: Tuple[int, int]) -> Optional[List[int]]:
        """Shortest path avoiding ``down_link``, or None if disconnected."""
        graph = self.monitor.topology.graph.copy()
        if graph.has_edge(*down_link):
            graph.remove_edge(*down_link)
        try:
            return nx.shortest_path(graph, requester, donor)
        except nx.NetworkXNoPath:
            return None

    def _reallocate(self, allocation: AllocationRecord,
                    exclude_donor: int) -> Optional[int]:
        """Find a replacement donor for a failed allocation."""
        requester = allocation.requester
        try:
            if allocation.kind is ResourceKind.MEMORY:
                replacement = self.monitor.request_memory(requester, allocation.amount)
            elif allocation.kind is ResourceKind.ACCELERATOR:
                replacement = self.monitor.request_accelerator(requester)
            else:
                replacement = self.monitor.request_nic(requester)
        except AllocationError:
            return None
        if replacement.donor == exclude_donor:
            # The failed donor was somehow selected again; give it back.
            self.monitor.release(replacement)
            return None
        return replacement.donor

    # ------------------------------------------------------------------
    # Fault entry points
    # ------------------------------------------------------------------
    def handle_link_down(self, node_a: int, node_b: int) -> RecoveryPlan:
        """A fabric link failed: update the TST and fix affected grants."""
        self.events_handled += 1
        self.monitor.tst.report(node_a, node_b, LinkStatus.DOWN,
                                now_ns=self.monitor.now_ns)
        plan = RecoveryPlan(event=f"link({node_a},{node_b})-down")
        for allocation in list(self.monitor.rat.active()):
            if not self._path_uses_link(allocation.requester, allocation.donor,
                                        (node_a, node_b)):
                plan.steps.append(RecoveryStep(allocation, RecoveryAction.UNAFFECTED))
                continue
            alternate = self._alternate_path(allocation.requester, allocation.donor,
                                             (node_a, node_b))
            if alternate is not None:
                plan.steps.append(RecoveryStep(allocation, RecoveryAction.REROUTE,
                                               new_path=alternate))
                continue
            new_donor = self._reallocate(allocation, exclude_donor=allocation.donor)
            if new_donor is not None:
                self.monitor.release(
                    _allocation_view(self.monitor, allocation))
                plan.steps.append(RecoveryStep(allocation, RecoveryAction.REALLOCATE,
                                               new_donor=new_donor))
            else:
                plan.steps.append(RecoveryStep(allocation, RecoveryAction.REVOKE))
        return plan

    def _write_off_node_resources(self, node_id: int) -> None:
        """Mark every resource of a failed node unavailable in the RRT."""
        from repro.runtime.tables import ResourceRecord

        for kind in ResourceKind:
            record = self.monitor.rrt.get(node_id, kind)
            if record is not None:
                self.monitor.rrt.register(ResourceRecord(
                    node_id=node_id, kind=kind, capacity=record.capacity,
                    available=0, last_heartbeat_ns=record.last_heartbeat_ns))

    def handle_node_failure(self, node_id: int) -> RecoveryPlan:
        """A node stopped heart-beating: revoke everything it touches."""
        self.events_handled += 1
        # Its resources are written off until the node returns, so the
        # re-allocation below can never select the dead node again.
        self._write_off_node_resources(node_id)
        plan = RecoveryPlan(event=f"node{node_id}-failure")
        for allocation in list(self.monitor.rat.active()):
            if allocation.donor != node_id and allocation.requester != node_id:
                plan.steps.append(RecoveryStep(allocation, RecoveryAction.UNAFFECTED))
                continue
            # Allocations the dead node was serving may be replaceable;
            # allocations it was consuming are simply revoked.
            if allocation.donor == node_id:
                new_donor = self._reallocate(allocation, exclude_donor=node_id)
                self.monitor.rat.release(allocation.allocation_id)
                if new_donor is not None:
                    plan.steps.append(RecoveryStep(allocation,
                                                   RecoveryAction.REALLOCATE,
                                                   new_donor=new_donor))
                    continue
            else:
                self.monitor.release(_allocation_view(self.monitor, allocation))
            plan.steps.append(RecoveryStep(allocation, RecoveryAction.REVOKE))
        return plan

    def check_heartbeats(self) -> List[RecoveryPlan]:
        """Sweep for dead nodes and handle each as a node failure."""
        plans = []
        for node_id in self.monitor.dead_nodes():
            plans.append(self.handle_node_failure(node_id))
        return plans


def _allocation_view(monitor: MonitorNode, record: AllocationRecord):
    """Wrap a RAT record in the Allocation shape ``MonitorNode.release`` expects."""
    from repro.runtime.monitor import Allocation

    return Allocation(record=record, donor=record.donor, amount=record.amount,
                      hops=monitor.topology.hop_count(record.requester, record.donor))
