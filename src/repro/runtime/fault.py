"""Fault handling for the resource-sharing runtime.

The paper leaves fault containment as future work but names the
ingredients: heartbeats let the Monitor Node infer node status, and the
Topology Status Table tracks link health from agent reports.  This
module implements the recovery actions on top of those tables:

* **link failures** -- when a link goes down, allocations whose
  requester-to-donor path used that link are flagged; the recovery plan
  either re-routes (if another path exists) or re-allocates from a
  different donor.
* **node failures** -- when a node's heartbeats stop, every allocation
  it is involved in (as donor or requester) is revoked, and its donated
  resources are written off until it returns.

Recovery is expressed as a :class:`RecoveryPlan` so callers (and tests)
can inspect exactly what the runtime decided to do.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import networkx as nx

from repro.runtime.monitor import AllocationError, MonitorNode
from repro.runtime.tables import AllocationRecord, LinkStatus, ResourceKind


class RecoveryAction(enum.Enum):
    """What the runtime decided to do about one affected allocation."""

    UNAFFECTED = "unaffected"
    REROUTE = "reroute"
    REALLOCATE = "reallocate"
    REVOKE = "revoke"


@dataclass
class RecoveryStep:
    """One allocation's recovery decision."""

    allocation: AllocationRecord
    action: RecoveryAction
    #: New donor when the action is REALLOCATE.
    new_donor: Optional[int] = None
    #: Alternate path when the action is REROUTE.
    new_path: Optional[List[int]] = None


@dataclass
class RecoveryPlan:
    """The full outcome of handling one fault event."""

    event: str
    steps: List[RecoveryStep] = field(default_factory=list)

    def affected(self) -> List[RecoveryStep]:
        return [step for step in self.steps
                if step.action is not RecoveryAction.UNAFFECTED]

    def count(self, action: RecoveryAction) -> int:
        return sum(1 for step in self.steps if step.action is action)


class FaultHandler:
    """Implements link- and node-failure recovery over a MonitorNode."""

    def __init__(self, monitor: MonitorNode,
                 reallocate_on_node_failure: bool = True):
        self.monitor = monitor
        self.events_handled = 0
        #: When False, allocations orphaned by a donor crash are revoked
        #: instead of replaced in place, leaving re-provisioning to a
        #: fleet-level re-borrower (the cluster matchmaker) that also
        #: rebuilds the transport channel -- the in-place reallocation
        #: only fixes the Monitor Node's books.
        self.reallocate_on_node_failure = reallocate_on_node_failure
        #: Nodes already handled as failed.  The heartbeat sweep runs
        #: periodically and a dead node stays dead until it recovers, so
        #: without this dedup every sweep would re-revoke (and re-count)
        #: the same failure.
        self._known_dead: set = set()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _path_uses_link(self, requester: int, donor: int,
                        link: Tuple[int, int]) -> bool:
        path = self.monitor.topology.shortest_path(requester, donor)
        links = {tuple(sorted(pair)) for pair in zip(path, path[1:])}
        return tuple(sorted(link)) in links

    def _alternate_path(self, requester: int, donor: int,
                        down_link: Tuple[int, int]) -> Optional[List[int]]:
        """Shortest path avoiding ``down_link``, or None if disconnected."""
        graph = self.monitor.topology.graph.copy()
        if graph.has_edge(*down_link):
            graph.remove_edge(*down_link)
        try:
            return nx.shortest_path(graph, requester, donor)
        except nx.NetworkXNoPath:
            return None

    def _report_link(self, node_a: int, node_b: int,
                     status: LinkStatus) -> None:
        """Record a link status in the TST *and* the endpoint agents.

        Heartbeats re-report each agent's link table over the TST -- and
        releasing a grant ingests the donor's heartbeat immediately.  If
        the agents still believed the link was up, the very recovery
        plan that marked it DOWN would heal it mid-plan (and re-pick the
        unreachable donor).  Router endpoints have no agent; only
        registered endpoints are updated.
        """
        self.monitor.tst.report(node_a, node_b, status,
                                now_ns=self.monitor.now_ns)
        registered = set(self.monitor.registered_nodes)
        for reporter, neighbor in ((node_a, node_b), (node_b, node_a)):
            if reporter in registered:
                self.monitor.agent(reporter).set_link_status(neighbor, status)

    def _reallocate(self, allocation: AllocationRecord,
                    exclude_donor: int) -> Optional[int]:
        """Find a replacement donor for a failed allocation."""
        requester = allocation.requester
        try:
            if allocation.kind is ResourceKind.MEMORY:
                replacement = self.monitor.request_memory(requester, allocation.amount)
            elif allocation.kind is ResourceKind.ACCELERATOR:
                replacement = self.monitor.request_accelerator(requester)
            else:
                replacement = self.monitor.request_nic(requester)
        except AllocationError:
            return None
        if replacement.donor == exclude_donor:
            # The failed donor was somehow selected again; give it back.
            self.monitor.release(replacement)
            return None
        return replacement.donor

    # ------------------------------------------------------------------
    # Fault entry points
    # ------------------------------------------------------------------
    def handle_link_down(self, node_a: int, node_b: int) -> RecoveryPlan:
        """A fabric link failed: update the TST and fix affected grants."""
        self.events_handled += 1
        self._report_link(node_a, node_b, LinkStatus.DOWN)
        plan = RecoveryPlan(event=f"link({node_a},{node_b})-down")
        for allocation in list(self.monitor.rat.active()):
            if not self._path_uses_link(allocation.requester, allocation.donor,
                                        (node_a, node_b)):
                plan.steps.append(RecoveryStep(allocation, RecoveryAction.UNAFFECTED))
                continue
            alternate = self._alternate_path(allocation.requester, allocation.donor,
                                             (node_a, node_b))
            if alternate is not None:
                plan.steps.append(RecoveryStep(allocation, RecoveryAction.REROUTE,
                                               new_path=alternate))
                continue
            # Release *before* requesting the replacement: the failed
            # grant's capacity must be back in the RRT while the new
            # donor is chosen, or a near-full cluster double-books and
            # spuriously revokes grants a one-for-one swap could have
            # saved.  The unreachable old donor cannot be re-picked --
            # the TST DOWN report above vetoes every path to it (and
            # ``_reallocate`` guards the donor id as a backstop).
            self.monitor.release(_allocation_view(self.monitor, allocation))
            new_donor = self._reallocate(allocation, exclude_donor=allocation.donor)
            if new_donor is not None:
                plan.steps.append(RecoveryStep(allocation, RecoveryAction.REALLOCATE,
                                               new_donor=new_donor))
            else:
                plan.steps.append(RecoveryStep(allocation, RecoveryAction.REVOKE))
        return plan

    def handle_link_up(self, node_a: int, node_b: int) -> RecoveryPlan:
        """A failed link recovered: clear its TST state.

        The recovery mirror of :meth:`handle_link_down` -- the missing
        half of the paper's TST story, which only ever reported DOWN.
        Marking the link UP immediately restores the preferred
        (shortest-path) routes through it: ``MonitorNode._path_usable``
        stops vetoing donors behind the link, so subsequent allocations
        and re-borrows use the recovered route again.  Existing grants
        are untouched (re-routing back is a policy decision, not a
        correctness one), so the plan carries no steps.
        """
        self.events_handled += 1
        self._report_link(node_a, node_b, LinkStatus.UP)
        return RecoveryPlan(event=f"link({node_a},{node_b})-up")

    def _write_off_node_resources(self, node_id: int) -> None:
        """Mark every resource of a failed node unavailable in the RRT."""
        from repro.runtime.tables import ResourceRecord

        for kind in ResourceKind:
            record = self.monitor.rrt.get(node_id, kind)
            if record is not None:
                self.monitor.rrt.register(ResourceRecord(
                    node_id=node_id, kind=kind, capacity=record.capacity,
                    available=0, last_heartbeat_ns=record.last_heartbeat_ns))

    def handle_node_failure(self, node_id: int) -> RecoveryPlan:
        """A node stopped heart-beating: revoke everything it touches."""
        self.events_handled += 1
        self._known_dead.add(node_id)
        # Its resources are written off until the node returns, so the
        # re-allocation below can never select the dead node again.
        self._write_off_node_resources(node_id)
        plan = RecoveryPlan(event=f"node{node_id}-failure")
        for allocation in list(self.monitor.rat.active()):
            if allocation.donor != node_id and allocation.requester != node_id:
                plan.steps.append(RecoveryStep(allocation, RecoveryAction.UNAFFECTED))
                continue
            # Allocations the dead node was serving may be replaceable;
            # allocations it was consuming are simply revoked.
            if allocation.donor == node_id:
                # Drop the failed record *before* requesting the
                # replacement (the dead donor's capacity is already
                # written off, but the requester may hold other grants
                # whose books must be settled first) -- the
                # reallocate-then-release order transiently double-books
                # the requester's demand and spuriously revokes at full
                # occupancy.  No hot-add-back: the donor is dead, so the
                # RAT record is released directly.
                self.monitor.rat.release(allocation.allocation_id)
                new_donor = (self._reallocate(allocation, exclude_donor=node_id)
                             if self.reallocate_on_node_failure else None)
                if new_donor is not None:
                    plan.steps.append(RecoveryStep(allocation,
                                                   RecoveryAction.REALLOCATE,
                                                   new_donor=new_donor))
                    continue
            else:
                self.monitor.release(_allocation_view(self.monitor, allocation))
            plan.steps.append(RecoveryStep(allocation, RecoveryAction.REVOKE))
        return plan

    def handle_node_recovery(self, node_id: int) -> None:
        """A previously failed node came back: reinstate its resources.

        Clears the failure dedup (so a later crash is handled afresh),
        settles any releases that were orphaned while the donor was gone
        (so its advertised capacity does not leak), and re-ingests the
        node's heartbeat, which re-registers its RRT rows with live
        capacity in place of the write-off.
        """
        self.events_handled += 1
        self._known_dead.discard(node_id)
        agent = self.monitor.agent(node_id)
        self.monitor.reconcile_orphaned_releases(node_id)
        self.monitor.ingest_agent_heartbeat(agent)

    def check_heartbeats(self) -> List[RecoveryPlan]:
        """Sweep for dead nodes and handle each *new* failure.

        Nodes already handled (still dead from an earlier sweep) are
        skipped until :meth:`handle_node_recovery` clears them, so a
        periodic sweep driven from the simulator clock converges
        instead of re-revoking the same node every period.
        """
        plans = []
        for node_id in self.monitor.dead_nodes():
            if node_id in self._known_dead:
                continue
            plans.append(self.handle_node_failure(node_id))
        return plans


def _allocation_view(monitor: MonitorNode, record: AllocationRecord):
    """Wrap a RAT record in the Allocation shape ``MonitorNode.release`` expects."""
    from repro.runtime.monitor import Allocation

    return Allocation(record=record, donor=record.donor, amount=record.amount,
                      hops=monitor.topology.hop_count(record.requester, record.donor))
