"""Resource-management runtime (Section 5.3).

The runtime is the third Venice layer: a Monitor Node (MN) maintains a
global view of available resources through three tables -- the Resource
Registration Table (RRT), the Resource Allocation Table (RAT) and the
Topology Status Table (TST) -- fed by per-node agents that report
availability and link status on every heartbeat.  When a node requests
resources beyond its local capacity the MN selects donor nodes
(distance-first, as in the prototype) and orchestrates the handshake,
retrying on stale records.
"""

from repro.runtime.tables import (
    ResourceKind,
    ResourceRecord,
    ResourceRegistrationTable,
    AllocationRecord,
    ResourceAllocationTable,
    LinkStatus,
    TopologyStatusTable,
)
from repro.runtime.agent import NodeAgent, HeartbeatReport
from repro.runtime.monitor import (
    MonitorNode,
    AllocationError,
    Allocation,
    BatchPlanEntry,
    BatchPlanError,
)
from repro.runtime.policies import (
    DonorSelectionPolicy,
    DistanceFirstPolicy,
    LoadBalancedPolicy,
    BandwidthAwarePolicy,
    ContentionAwarePolicy,
    FabricContentionTelemetry,
)
from repro.runtime.shard import (
    MonitorShard,
    ShardCoordinator,
    ShardedMonitor,
    ShardUnavailableError,
)
from repro.runtime.fault import (
    FaultHandler,
    RecoveryAction,
    RecoveryPlan,
    RecoveryStep,
)
from repro.runtime.churn import (
    ChurnConfig,
    ChurnEngine,
    ChurnEvent,
    FaultKind,
    generate_campaign,
)

__all__ = [
    "ResourceKind",
    "ResourceRecord",
    "ResourceRegistrationTable",
    "AllocationRecord",
    "ResourceAllocationTable",
    "LinkStatus",
    "TopologyStatusTable",
    "NodeAgent",
    "HeartbeatReport",
    "MonitorNode",
    "AllocationError",
    "Allocation",
    "BatchPlanEntry",
    "BatchPlanError",
    "DonorSelectionPolicy",
    "DistanceFirstPolicy",
    "LoadBalancedPolicy",
    "BandwidthAwarePolicy",
    "ContentionAwarePolicy",
    "FabricContentionTelemetry",
    "MonitorShard",
    "ShardCoordinator",
    "ShardedMonitor",
    "ShardUnavailableError",
    "FaultHandler",
    "RecoveryAction",
    "RecoveryPlan",
    "RecoveryStep",
    "ChurnConfig",
    "ChurnEngine",
    "ChurnEvent",
    "FaultKind",
    "generate_campaign",
]
