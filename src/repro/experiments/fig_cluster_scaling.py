"""Cluster scaling: per-share degradation as the fleet grows.

The paper's prototype measures resource sharing between one
requester/donor pair (optionally through one external router).  This
experiment scales that setup out: clusters of 2 to 64 nodes are built
over the multi-router fat-tree fabric (the 2-node baseline keeps the
paper's point-to-point link), every node borrows a remote-memory share
through the matchmaker, and the sweep reports how per-share remote-read
latency and bulk throughput degrade relative to the directly connected
pair.  One :class:`~repro.cluster.latency_cache.ClusterLatencyCache` is
shared across the whole sweep, and the report includes its measured hit
rate -- the fast path that keeps N-node sweeps from recomputing the
same closed-form latencies per access.

Methodology per Wei et al. (arXiv:2010.07098): one model, many
configurations, measured uniformly.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis.report import FigureReport
from repro.cluster import Cluster, ClusterConfig, ClusterLatencyCache

MB = 1024 * 1024


@dataclass
class ClusterScalingConfig:
    """Sweep parameters (node counts 2 -> 64 by default)."""

    node_counts: Tuple[int, ...] = (2, 4, 8, 16, 32, 64)
    #: Compute nodes per fat-tree leaf router.
    leaf_radix: int = 4
    #: Spine routers joining the leaves.
    num_spines: int = 2
    #: Donor-selection policy used by the matchmaker.
    policy: str = "load-balanced"
    #: Remote-memory share each node borrows from the fleet.
    borrow_bytes: int = 8 * MB
    #: Payload of one remote read (a cacheline).
    read_bytes: int = 64
    #: Bulk-transfer size used for the throughput measurement.
    bulk_bytes: int = 64 * 1024
    #: Remote reads issued per share (exercises the latency cache).
    reads_per_share: int = 32

    def __post_init__(self) -> None:
        if not self.node_counts or min(self.node_counts) < 2:
            raise ValueError("node counts must all be at least 2")
        if self.reads_per_share < 1:
            raise ValueError("each share needs at least one read")
        # Sweep smallest to largest so the first point is the baseline
        # and the last cluster hosts the hop-count profile.
        self.node_counts = tuple(sorted(set(self.node_counts)))


def _cluster_config(config: ClusterScalingConfig, num_nodes: int) -> ClusterConfig:
    """Fleet shape for one sweep point (pair baseline at two nodes)."""
    if num_nodes == 2:
        return ClusterConfig(num_nodes=2, topology="direct_pair",
                             policy=config.policy)
    return ClusterConfig(num_nodes=num_nodes, topology="fat_tree",
                         leaf_radix=config.leaf_radix,
                         num_spines=config.num_spines,
                         policy=config.policy)


def run_fig_cluster_scaling(config: Optional[ClusterScalingConfig] = None
                            ) -> FigureReport:
    """Sweep node counts and report per-share latency/throughput."""
    config = config or ClusterScalingConfig()
    cache = ClusterLatencyCache()

    latency_ns: Dict[str, float] = {}
    latency_degradation: Dict[str, float] = {}
    throughput_gbps: Dict[str, float] = {}
    throughput_degradation: Dict[str, float] = {}
    mean_link_hops: Dict[str, float] = {}
    largest_cluster: Optional[Cluster] = None

    for num_nodes in config.node_counts:
        cluster = Cluster(_cluster_config(config, num_nodes),
                          latency_cache=cache)
        shares = cluster.matchmaker.provision_fleet(
            memory_bytes_per_node=config.borrow_bytes)

        reads = []
        for share in shares:
            reads.extend(share.channel.read_latency_ns(config.read_bytes)
                         for _ in range(config.reads_per_share))
        bulk = [
            config.bulk_bytes * 8
            / cluster.rdma_channel(share.requester, share.donor)
                     .transfer_latency_ns(config.bulk_bytes)
            for share in shares
        ]

        label = f"{num_nodes}_nodes"
        latency_ns[label] = statistics.mean(reads)
        throughput_gbps[label] = statistics.mean(bulk)
        mean_link_hops[label] = statistics.mean(s.link_hops for s in shares)
        largest_cluster = cluster

    baseline_label = f"{config.node_counts[0]}_nodes"
    for label in latency_ns:
        latency_degradation[label] = (
            100.0 * (latency_ns[label] / latency_ns[baseline_label] - 1.0))
        throughput_degradation[label] = (
            100.0 * (1.0 - throughput_gbps[label] / throughput_gbps[baseline_label]))

    # Remote-read latency as a function of hop count, measured on the
    # largest cluster: group every route from node 0 by its link count.
    by_hops: Dict[int, list] = {}
    for dst in largest_cluster.node_ids[1:]:
        hops = largest_cluster.topology.hop_count(0, dst)
        by_hops.setdefault(hops, []).append(
            largest_cluster.remote_read_latency_ns(0, dst, config.read_bytes))
    latency_by_hops = {
        f"{hops}_hops": statistics.mean(values)
        for hops, values in sorted(by_hops.items())
    }

    report = FigureReport(
        figure_id="fig_cluster_scaling",
        title="Per-share remote-memory latency/throughput versus cluster size "
              "(fat-tree fabric, every node borrowing one share)",
        notes="shape target: latency non-decreasing in hop count; the shared "
              "latency cache answers >90% of path queries during the sweep",
    )
    report.add_series("remote_read_latency_ns", latency_ns)
    report.add_series("latency_degradation_percent_vs_baseline", latency_degradation)
    report.add_series("bulk_throughput_gbps", throughput_gbps)
    report.add_series("throughput_degradation_percent_vs_baseline",
                      throughput_degradation)
    report.add_series("mean_link_hops", mean_link_hops)
    report.add_series("remote_read_latency_ns_by_hops", latency_by_hops)
    report.add_series("latency_cache", {
        "hit_rate_percent": 100.0 * cache.hit_rate,
        "lookups": float(cache.lookups),
        "entries": float(len(cache)),
    })
    return report


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_fig_cluster_scaling().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
