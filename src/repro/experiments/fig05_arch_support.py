"""Figure 5: impact of architectural support for remote memory access.

Setup from Section 4.2.1: the application's data (1 GB in the paper)
lives entirely in the memory of a directly connected remote node; five
ways of reaching it are compared, normalised to having all memory local:

* off-chip QPair        -- explicit request/response messaging through
  interface logic behind I/O buses and adapters (the legacy IB-style
  path);
* on-chip QPair         -- the same messaging with the queue-pair logic
  integrated on-chip;
* async on-chip QPair   -- the application rewritten in the
  Scale-out-NUMA asynchronous style, overlapping independent requests
  (only possible when the algorithm permits: PageRank yes, BerkeleyDB
  no, because each query's status must be checked before the next);
* off-chip CRMA         -- transparent cacheline fills through off-chip
  interface logic;
* on-chip CRMA          -- the Venice design point.

Scale-down: the remote dataset is 8 MB instead of 1 GB; compute per
operation keeps the paper's compute-to-communication balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.analysis.metrics import slowdown_versus
from repro.analysis.report import FigureReport
from repro.core.config import ChannelPlacement
from repro.cpu.core import TimingCore
from repro.experiments.common import ExperimentPlatform
from repro.workloads.kvstore import KeyValueConfig, TransactionalKeyValueWorkload
from repro.workloads.pagerank import PageRankConfig, PageRankWorkload

#: Figure 5 values (execution time normalised to all-local memory).
PAPER_REFERENCE_PAGERANK: Dict[str, float] = {
    "off_chip_qpair": 7.69,
    "on_chip_qpair": 5.96,
    "async_on_chip_qpair": 3.12,
    "off_chip_crma": 3.01,
    "on_chip_crma": 2.12,
}
PAPER_REFERENCE_BERKELEYDB: Dict[str, float] = {
    "off_chip_qpair": 11.92,
    "on_chip_qpair": 10.91,
    "async_on_chip_qpair": 10.83,
    "off_chip_crma": 3.43,
    "on_chip_crma": 2.48,
}

#: The five configurations in figure order.
CONFIGURATIONS = (
    "off_chip_qpair",
    "on_chip_qpair",
    "async_on_chip_qpair",
    "off_chip_crma",
    "on_chip_crma",
)


@dataclass
class Fig05Config:
    """Scaled-down experiment parameters."""

    remote_dataset_bytes: int = 8 * 1024 * 1024
    #: BerkeleyDB: transactions of five queries (4 gets + 1 put).
    kv_queries: int = 5_000
    kv_instructions_per_query: int = 2_400
    #: PageRank graph (rank arrays largely cache-resident, edge scan not).
    pagerank_vertices: int = 16_384
    pagerank_edges: int = 60_000
    pagerank_instructions_per_edge: int = 500
    seed: int = 23


def _pagerank(config: Fig05Config, asynchronous: bool,
              per_access_overhead_ns: int = 0) -> PageRankWorkload:
    return PageRankWorkload(PageRankConfig(
        num_vertices=config.pagerank_vertices,
        num_edges=config.pagerank_edges,
        instructions_per_edge=config.pagerank_instructions_per_edge,
        asynchronous=asynchronous,
        per_access_overhead_ns=per_access_overhead_ns,
        seed=config.seed,
    ))


def _berkeleydb(config: Fig05Config) -> TransactionalKeyValueWorkload:
    return TransactionalKeyValueWorkload(KeyValueConfig(
        dataset_bytes=config.remote_dataset_bytes,
        num_queries=config.kv_queries,
        instructions_per_query=config.kv_instructions_per_query,
        seed=config.seed,
    ))


def build_core(platform: ExperimentPlatform, configuration: str,
               dataset_bytes: int, through_router: bool = False) -> TimingCore:
    """Core whose memory is supplied per one of the five configurations."""
    if configuration == "off_chip_qpair":
        return platform.qpair_memory_core(dataset_bytes, local_bytes=0,
                                          placement=ChannelPlacement.OFF_CHIP,
                                          through_router=through_router)
    if configuration in ("on_chip_qpair", "async_on_chip_qpair"):
        return platform.qpair_memory_core(dataset_bytes, local_bytes=0,
                                          placement=ChannelPlacement.ON_CHIP,
                                          through_router=through_router)
    if configuration == "off_chip_crma":
        return platform.crma_core(dataset_bytes, local_bytes=0,
                                  placement=ChannelPlacement.OFF_CHIP,
                                  through_router=through_router)
    if configuration == "on_chip_crma":
        return platform.crma_core(dataset_bytes, local_bytes=0,
                                  placement=ChannelPlacement.ON_CHIP,
                                  through_router=through_router)
    raise ValueError(f"unknown configuration {configuration!r}")


def measure_times(config: Fig05Config = None, platform: ExperimentPlatform = None,
                  through_router: bool = False) -> Dict[str, Dict[str, float]]:
    """Absolute execution times for both workloads, all configurations.

    Returns ``{"pagerank": {...}, "berkeleydb": {...}}`` with an extra
    ``"all_local"`` entry per workload -- reused by the Figure 6 driver.
    """
    config = config or Fig05Config()
    platform = platform or ExperimentPlatform()
    times: Dict[str, Dict[str, float]] = {"pagerank": {}, "berkeleydb": {}}

    def run(workload_factory: Callable, core: TimingCore) -> float:
        return float(workload_factory().run(core).total_time_ns)

    times["pagerank"]["all_local"] = run(
        lambda: _pagerank(config, asynchronous=False),
        platform.all_local_core(config.remote_dataset_bytes))
    times["berkeleydb"]["all_local"] = run(
        lambda: _berkeleydb(config),
        platform.all_local_core(config.remote_dataset_bytes))

    for configuration in CONFIGURATIONS:
        asynchronous = configuration == "async_on_chip_qpair"
        # The asynchronous rewrite replaces transparent loads with
        # explicit user-level QPair operations, so every access pays the
        # post-send / reap-completion software cost even though the
        # fabric latency itself is overlapped.
        qpair = platform.venice.qpair
        per_access_overhead = (qpair.post_send_ns + qpair.completion_ns
                               if asynchronous else 0)
        pagerank_core = build_core(platform, configuration,
                                   config.remote_dataset_bytes, through_router)
        times["pagerank"][configuration] = run(
            lambda: _pagerank(config, asynchronous=asynchronous,
                              per_access_overhead_ns=per_access_overhead),
            pagerank_core)
        # BerkeleyDB cannot exploit asynchrony: the client checks each
        # query's return status before issuing the next one, so the
        # async configuration degenerates to the synchronous one.
        berkeleydb_core = build_core(platform, configuration,
                                     config.remote_dataset_bytes, through_router)
        times["berkeleydb"][configuration] = run(
            lambda: _berkeleydb(config), berkeleydb_core)
    return times


def run_fig05(config: Fig05Config = None,
              platform: ExperimentPlatform = None) -> FigureReport:
    """Measure the Figure 5 slowdowns and return the report."""
    times = measure_times(config, platform)
    report = FigureReport(
        figure_id="fig05",
        title="Relative performance of remote-memory access mechanisms "
              "(execution time normalised to all-local memory)",
        notes="remote dataset scaled to 8 MB; shape target: QPair messaging far "
              "slower than CRMA for the dependent key/value workload, asynchrony "
              "only helps PageRank, on-chip integration always helps",
    )
    for workload, reference in (("pagerank", PAPER_REFERENCE_PAGERANK),
                                ("berkeleydb", PAPER_REFERENCE_BERKELEYDB)):
        baseline = times[workload]["all_local"]
        slowdowns = {name: slowdown_versus(times[workload][name], baseline)
                     for name in CONFIGURATIONS}
        report.add_series(workload, slowdowns, reference=reference)
    return report


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_fig05().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
