"""Figure 15: remote memory access performance, CRMA versus RDMA swap.

Setup from Section 7.1: each workload runs with 25 % of its memory
local and 75 % remote, supplied either directly (CRMA channel,
cacheline granularity) or as swap space (RDMA channel, page
granularity).  Results are normalised to the conventional configuration
where the missing 75 % is supplied by swapping to local storage; the
all-local (ideal) configuration is shown for reference.

Shape targets from the paper:

* memory is a critical resource: the ideal configuration is orders of
  magnitude faster than local swapping for the random-access in-memory
  database (403.8x), much less so for streaming workloads;
* with Venice support, remote memory is effective: slowdowns versus
  all-local stay in the 1.03x-2.5x range;
* access locality decides the best mode: random access favours CRMA
  (In-Mem DB, Graph500), contiguous access favours page-granularity
  RDMA swap (CC, Grep), and the gap between modes is non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.analysis.metrics import speedup_versus
from repro.analysis.report import FigureReport
from repro.experiments.common import (
    ExperimentPlatform,
    compare_transport_backends,
    series_relative_deviations,
)
from repro.mem.swap import LocalDiskSwapDevice
from repro.workloads.connected_components import (
    ConnectedComponentsConfig,
    ConnectedComponentsWorkload,
)
from repro.workloads.graph500 import Graph500Config, Graph500Workload
from repro.workloads.grep import GrepConfig, GrepWorkload
from repro.workloads.kvstore import KeyValueConfig, KeyValueWorkload

#: Figure 15 values (performance normalised to local-swap).
PAPER_REFERENCE: Dict[str, Dict[str, float]] = {
    "all_local": {"inmem_db": 403.80, "cc": 1.13, "grep": 2.48, "graph500": 6.90},
    "crma": {"inmem_db": 159.00, "cc": 0.65, "grep": 1.07, "graph500": 4.86},
    "rdma_swap": {"inmem_db": 3.30, "cc": 1.10, "grep": 2.07, "graph500": 3.22},
}

#: Fraction of each workload's dataset that stays in local memory.
LOCAL_FRACTION = 0.25


@dataclass
class Fig15Config:
    """Scaled-down workload sizes."""

    inmem_db_dataset_bytes: int = 16 * 1024 * 1024
    inmem_db_queries: int = 4_000
    cc_vertices: int = 4_096
    cc_edges: int = 21_461
    cc_iterations: int = 2
    grep_dataset_bytes: int = 16 * 1024 * 1024
    graph500_scale: int = 11
    seed: int = 41

    @classmethod
    def tiny(cls) -> "Fig15Config":
        """Event-fabric-sized workloads (every remote access is packets)."""
        return cls(inmem_db_dataset_bytes=2 * 1024 * 1024,
                   inmem_db_queries=400,
                   cc_vertices=512, cc_edges=2_600, cc_iterations=1,
                   grep_dataset_bytes=2 * 1024 * 1024,
                   graph500_scale=8)


def _workload_factories(config: Fig15Config) -> Dict[str, Callable]:
    """Factory per workload returning (workload, dataset_bytes)."""

    def inmem_db():
        workload = KeyValueWorkload(KeyValueConfig(
            dataset_bytes=config.inmem_db_dataset_bytes,
            num_queries=config.inmem_db_queries,
            instructions_per_query=600,
            seed=config.seed,
        ))
        return workload, config.inmem_db_dataset_bytes

    def cc():
        workload = ConnectedComponentsWorkload(ConnectedComponentsConfig(
            num_vertices=config.cc_vertices,
            num_edges=config.cc_edges,
            iterations=config.cc_iterations,
            seed=config.seed,
        ))
        return workload, workload.config.dataset_bytes

    def grep():
        workload = GrepWorkload(GrepConfig(dataset_bytes=config.grep_dataset_bytes,
                                           stride_records=4))
        return workload, config.grep_dataset_bytes

    def graph500():
        workload = Graph500Workload(Graph500Config(scale=config.graph500_scale,
                                                   num_roots=1,
                                                   seed=config.seed))
        return workload, workload.config.dataset_bytes

    return {"inmem_db": inmem_db, "cc": cc, "grep": grep, "graph500": graph500}


def run_fig15(config: Fig15Config = None,
              platform: ExperimentPlatform = None) -> FigureReport:
    """Measure the Figure 15 performance ratios and return the report."""
    config = config or Fig15Config()
    platform = platform or ExperimentPlatform()
    factories = _workload_factories(config)

    series: Dict[str, Dict[str, float]] = {"all_local": {}, "crma": {}, "rdma_swap": {}}
    for name, factory in factories.items():
        workload, dataset_bytes = factory()
        local_bytes = max(4096, int(dataset_bytes * LOCAL_FRACTION))

        baseline_ns = factory()[0].run(platform.swap_core(
            dataset_bytes, local_bytes, LocalDiskSwapDevice())).total_time_ns
        all_local_ns = factory()[0].run(
            platform.all_local_core(dataset_bytes)).total_time_ns
        crma_ns = factory()[0].run(platform.crma_core(
            dataset_bytes, local_bytes)).total_time_ns
        rdma_ns = factory()[0].run(platform.rdma_swap_core(
            dataset_bytes, local_bytes)).total_time_ns

        series["all_local"][name] = speedup_versus(all_local_ns, baseline_ns)
        series["crma"][name] = speedup_versus(crma_ns, baseline_ns)
        series["rdma_swap"][name] = speedup_versus(rdma_ns, baseline_ns)

    report = FigureReport(
        figure_id="fig15",
        title="Remote memory access performance with 75% remote / 25% local "
              "memory (performance normalised to local-storage swapping)",
        notes="shape target: random access favours CRMA, streaming favours "
              "RDMA swap, all-local dwarfs swapping for the in-memory DB",
    )
    for name, values in series.items():
        report.add_series(name, values, reference=PAPER_REFERENCE[name])
    return report


@dataclass
class Fig15ContendedConfig:
    """Parameters of the event-fabric (contended) Figure 15 run."""

    #: Workload sizes shared by the closed-form and event runs.
    workloads: Fig15Config = None
    #: Inject closed-loop cross-traffic on the requester/donor pair link.
    #: Few, large packets load the link as heavily as many small ones
    #: while costing far fewer simulator events per microsecond -- the
    #: contended run executes every workload access as packets, so noise
    #: event rate directly multiplies wall-clock time.
    cross_traffic: bool = True
    cross_payload_bytes: int = 1024
    cross_window: int = 2
    cross_turnaround_ns: int = 0
    scheduler: str = "auto"

    def __post_init__(self) -> None:
        self.workloads = self.workloads or Fig15Config.tiny()


def run_fig15_contended(config: Fig15ContendedConfig = None) -> FigureReport:
    """Figure 15 over the event-driven fabric, versus its closed forms.

    The same scaled-down workloads run twice: once on the closed-form
    transport backend (the uncontended formulas) and once on the event
    backend, where every remote CRMA access and RDMA swap page is real
    credit-flow-controlled packets on one shared simulator -- optionally
    contended by closed-loop cross-traffic on the pair link.  With
    cross-traffic disabled the event ratios validate the closed forms
    (the ``max_rel_deviation_percent`` parity figure); with it enabled
    the deltas are pure queueing delay, which the closed forms cannot
    see.
    """
    config = config or Fig15ContendedConfig()
    closed, event, event_platform, driver = compare_transport_backends(
        run_fig15, config.workloads,
        cross_traffic=config.cross_traffic,
        cross_payload_bytes=config.cross_payload_bytes,
        cross_window=config.cross_window,
        cross_turnaround_ns=config.cross_turnaround_ns,
        scheduler=config.scheduler)

    mode = "contended" if config.cross_traffic else "uncontended"
    report = FigureReport(
        figure_id="fig15_contended",
        title="Remote memory performance over the event-driven fabric "
              f"({mode}) versus the closed-form transport backend",
        notes="shape target: the closed-form ordering (random access favours "
              "CRMA, streaming favours RDMA swap) survives on the real "
              "fabric; cross-traffic widens the event-vs-closed-form gap by "
              "pure queueing delay",
    )
    for name in ("all_local", "crma", "rdma_swap"):
        report.add_series(f"closed_form_{name}", closed.series[name],
                          reference=PAPER_REFERENCE[name])
        report.add_series(f"event_{name}", event.series[name])
    deviations = series_relative_deviations(closed, event)
    transport = event_platform.event_transport()
    report.add_series("fabric", {
        "max_rel_deviation_percent": 100.0 * max(deviations),
        "events_processed": float(transport.sim.events_processed),
        "transport_ops": float(transport.ops_completed),
        "cross_traffic_packets": float(driver.packets_sent if driver else 0),
    })
    return report


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_fig15().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
