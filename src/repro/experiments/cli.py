"""Command-line runner for the experiment drivers.

``python -m repro.experiments fig05 fig18`` runs the named drivers and
prints their paper-versus-measured reports; with no arguments it lists
what is available, and ``--all`` runs everything (the same content the
benchmark harness produces, without pytest).
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, List

from repro.experiments.fig03_commodity import run_fig03
from repro.experiments.fig05_arch_support import run_fig05
from repro.experiments.fig06_router import run_fig06
from repro.experiments.fig14_redis_memory import run_fig14
from repro.experiments.fig15_remote_memory import run_fig15, run_fig15_contended
from repro.experiments.fig16_accel_nic import (
    run_fig16a,
    run_fig16b,
    run_fig16_contended,
)
from repro.experiments.fig17_channels import run_fig17
from repro.experiments.fig18_flow_control import run_fig18
from repro.experiments.fig_cluster_churn import run_fig_cluster_churn
from repro.experiments.fig_cluster_contended import run_fig_cluster_contended
from repro.experiments.fig_cluster_contention import (
    run_fig_cluster_contention,
    run_fig_cluster_contention_closed_loop,
)
from repro.experiments.fig_cluster_scaling import run_fig_cluster_scaling
from repro.experiments.fig_mn_failover import run_fig_mn_failover
from repro.experiments.hardware_cost import run_hardware_cost

#: Experiment id -> (description, driver).
EXPERIMENTS: Dict[str, tuple] = {
    "fig03": ("remote memory over commodity interconnects", run_fig03),
    "fig05": ("impact of architectural support for remote access", run_fig05),
    "fig06": ("overhead of a one-level external router", run_fig06),
    "fig14": ("mini data-center Redis memory sweep", run_fig14),
    "fig15": ("CRMA versus RDMA-swap remote memory", run_fig15),
    "fig16a": ("remote accelerator sharing", run_fig16a),
    "fig16b": ("remote NIC sharing", run_fig16b),
    "fig15_contended": ("fig15 workloads over the contended event fabric "
                        "(event transport backend + cross-traffic)",
                        run_fig15_contended),
    "fig16_contended": ("fig16 sharing over the contended event fabric "
                        "(event transport backend + cross-traffic)",
                        run_fig16_contended),
    "fig17": ("channel comparison per access pattern", run_fig17),
    "fig18": ("credit flow control over CRMA", run_fig18),
    "cluster": ("N-node cluster scaling over the fat-tree fabric",
                run_fig_cluster_scaling),
    "contention": ("queueing delay under cross-traffic on the event fabric",
                   run_fig_cluster_contention),
    "contention_closed": ("contended request/response round-trips over the "
                          "event fabric (closed-loop)",
                          run_fig_cluster_contention_closed_loop),
    "cluster_contended": ("concurrent borrowers' measured reads on the "
                          "shared fleet fabric vs the serialized op driver",
                          run_fig_cluster_contended),
    "churn": ("deterministic fault campaigns with live recovery over the "
              "contended event fabric", run_fig_cluster_churn),
    "mn_failover": ("sharded Monitor Node crash failover, coordinator "
                    "throughput and contention-aware matchmaking",
                    run_fig_mn_failover),
    "hwcost": ("Section 7.3 hardware cost", run_hardware_cost),
}


def available_experiments() -> List[str]:
    """Identifiers accepted by :func:`main`, in figure order."""
    return list(EXPERIMENTS)


def run_experiment(name: str):
    """Run one experiment by id and return its FigureReport."""
    try:
        _description, driver = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {', '.join(EXPERIMENTS)}"
        ) from None
    return driver()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the Venice (HPCA 2016) evaluation figures.",
    )
    parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help="experiment ids to run (e.g. fig03 fig17); "
                             "omit to list the available experiments")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    return parser


def main(argv: List[str] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.all:
        selected = available_experiments()
    else:
        selected = args.experiments
    if not selected:
        print("available experiments:")
        for name, (description, _driver) in EXPERIMENTS.items():
            print(f"  {name:<8} {description}")
        print("\nrun with: python -m repro.experiments <ids...> | --all")
        return 0
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    for name in selected:
        report = run_experiment(name)
        print(report.to_text())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - module entry point
    raise SystemExit(main())
