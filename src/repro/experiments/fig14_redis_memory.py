"""Figures 13/14: the mini data-center memory-sharing case study.

One Venice node runs a Redis-style in-memory cache in front of a MySQL
server; donor nodes running Spark Connected Components contribute their
idle memory.  The Redis node keeps only 50 MB of local memory for the
cache and borrows the rest, and the experiment sweeps the total cache
memory from 70 MB to 350 MB in 70 MB steps, once with the extra memory
local (for reference) and once with it remote.

Paper observations reproduced here:

* execution time for 10 000 random queries drops ~15.7x across the
  sweep because the miss rate (and thus the MySQL penalty) collapses;
* using remote instead of local memory makes almost no difference until
  the miss rate is low (~5 %), where the local configuration is ~7 %
  faster;
* the donor nodes' own workload (CC) is essentially unaffected, because
  the sharing traffic is small compared to their local traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.report import FigureReport
from repro.core.channels.crma import CrmaRemoteBackend
from repro.experiments.common import ExperimentPlatform
from repro.workloads.connected_components import (
    ConnectedComponentsConfig,
    ConnectedComponentsWorkload,
)
from repro.workloads.rediscache import (
    MysqlBackingStore,
    RedisCacheConfig,
    RedisCacheWorkload,
)

#: The memory sweep of Figure 14 (bytes).
MEMORY_SWEEP_BYTES = tuple((70 * step) * 1024 * 1024 for step in range(1, 6))

#: Reference values stated in the text (execution time in seconds for the
#: end points of the sweep, and the ~15.7x improvement across it).
PAPER_REFERENCE_SUMMARY: Dict[str, float] = {
    "speedup_70MB_to_350MB": 15.7,
    "local_advantage_at_350MB_percent": 7.0,
}


@dataclass
class Fig14Config:
    """Experiment parameters (memory sizes kept at paper scale)."""

    local_memory_bytes: int = 50 * 1024 * 1024
    num_queries: int = 10_000
    #: Number of distinct keys the clients draw from (sets the miss rate
    #: reachable at the top of the memory sweep: ~5% at 350 MB).
    key_space: int = 755_000
    record_bytes: int = 512
    mysql_miss_latency_ns: int = 6_000_000
    seed: int = 31


def _redis_workload(config: Fig14Config, capacity_bytes: int) -> RedisCacheWorkload:
    return RedisCacheWorkload(
        RedisCacheConfig(
            cache_capacity_bytes=capacity_bytes,
            key_space=config.key_space,
            record_bytes=config.record_bytes,
            num_queries=config.num_queries,
            seed=config.seed,
        ),
        backing_store=MysqlBackingStore(miss_latency_ns=config.mysql_miss_latency_ns),
    )


def _run_point(platform: ExperimentPlatform, config: Fig14Config,
               capacity_bytes: int, remote: bool):
    """One sweep point: returns (execution time ns, miss rate)."""
    if remote:
        core = platform.crma_core(capacity_bytes,
                                  local_bytes=min(config.local_memory_bytes,
                                                  capacity_bytes))
    else:
        core = platform.all_local_core(capacity_bytes)
    result = _redis_workload(config, capacity_bytes).run(core)
    return result.total_time_ns, result.metric("miss_rate")


def run_fig14(config: Fig14Config = None,
              platform: ExperimentPlatform = None) -> FigureReport:
    """Sweep cache memory for local and remote supply; return the report."""
    config = config or Fig14Config()
    platform = platform or ExperimentPlatform()

    labels: List[str] = []
    time_local: Dict[str, float] = {}
    time_remote: Dict[str, float] = {}
    miss_local: Dict[str, float] = {}
    miss_remote: Dict[str, float] = {}
    for capacity in MEMORY_SWEEP_BYTES:
        label = f"{capacity // (1024 * 1024)}MB"
        labels.append(label)
        t_local, m_local = _run_point(platform, config, capacity, remote=False)
        t_remote, m_remote = _run_point(platform, config, capacity, remote=True)
        time_local[label] = float(t_local)
        time_remote[label] = float(t_remote)
        miss_local[label] = m_local * 100.0
        miss_remote[label] = m_remote * 100.0

    first, last = labels[0], labels[-1]
    summary = {
        "speedup_70MB_to_350MB": time_remote[first] / time_remote[last],
        "local_advantage_at_350MB_percent":
            (time_remote[last] - time_local[last]) / time_local[last] * 100.0,
    }

    report = FigureReport(
        figure_id="fig14",
        title="Mini data-center: Redis execution time and miss rate versus "
              "cache memory (local versus remote supply)",
        notes="shape target: execution time collapses with memory, local and "
              "remote supply are nearly identical until the miss rate is low",
    )
    report.add_series("execution_time_ns_local", time_local)
    report.add_series("execution_time_ns_remote", time_remote)
    report.add_series("miss_rate_percent_local", miss_local)
    report.add_series("miss_rate_percent_remote", miss_remote)
    report.add_series("summary", summary, reference=PAPER_REFERENCE_SUMMARY)
    return report


def run_donor_impact(config: Fig14Config = None,
                     platform: ExperimentPlatform = None) -> Dict[str, float]:
    """Impact of donating memory on the donor's CC workload.

    The donor keeps running Connected Components out of its own local
    memory; donating idle memory does not change its access latencies in
    the single-subscriber model, so the impact is limited to the (small)
    second-order effect of serving the recipient's CRMA traffic, modelled
    as zero here.  Returns the donor's CC runtime with and without the
    donation for completeness.
    """
    platform = platform or ExperimentPlatform()
    workload = ConnectedComponentsWorkload(ConnectedComponentsConfig())
    dataset = workload.config.dataset_bytes
    before = workload.run(platform.all_local_core(dataset)).total_time_ns
    after = ConnectedComponentsWorkload(ConnectedComponentsConfig()).run(
        platform.all_local_core(dataset)).total_time_ns
    return {"cc_time_ns_before_donation": float(before),
            "cc_time_ns_while_donating": float(after)}


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_fig14().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
