"""Figure 18: bandwidth improvement through synergistic channel operation.

Credit-based flow control normally returns credits as (small) QPair
packets; their latency throttles the sender's window and wastes link
bandwidth.  Venice instead writes credit updates through the CRMA
channel into a dedicated, overwriteable memory region (Figure 9), which
returns credits sooner and lifts effective QPair bandwidth.  The paper
reports improvements between 28 % and 51 %, larger for small packets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.analysis.report import FigureReport
from repro.core.channels.collaboration import CreditFlowControlModel
from repro.experiments.common import ExperimentPlatform

#: The packet sizes plotted in Figure 18.
PAYLOAD_SIZES = (4, 8, 16, 32, 64, 128)
PAYLOAD_LABELS = {4: "4B_word", 8: "8B_double_word", 16: "16B_quad_word",
                  32: "32B_cacheline", 64: "64B_dual_cacheline",
                  128: "128B_quad_cacheline"}

#: The paper states the range 28-51%; per-size bars are read off the plot
#: approximately (monotonically decreasing with packet size).
PAPER_REFERENCE: Dict[str, float] = {
    "4B_word": 51.0,
    "8B_double_word": 48.0,
    "16B_quad_word": 44.0,
    "32B_cacheline": 40.0,
    "64B_dual_cacheline": 34.0,
    "128B_quad_cacheline": 28.0,
}


@dataclass
class Fig18Config:
    """Experiment parameters."""

    #: Credits (receive-buffer slots) available to the QPair sender.
    credits: int = 4
    payload_sizes: Sequence[int] = PAYLOAD_SIZES


def build_model(config: Fig18Config = None,
                platform: ExperimentPlatform = None) -> CreditFlowControlModel:
    """Credit flow-control model over the platform's QPair and CRMA channels."""
    config = config or Fig18Config()
    platform = platform or ExperimentPlatform()
    return CreditFlowControlModel(qpair=platform.qpair_channel(),
                                  crma=platform.crma_channel(),
                                  credits=config.credits)


def run_fig18(config: Fig18Config = None,
              platform: ExperimentPlatform = None) -> FigureReport:
    """Measure per-packet-size bandwidth improvements."""
    config = config or Fig18Config()
    model = build_model(config, platform)

    improvements = {
        PAYLOAD_LABELS[size]: model.improvement_percent(size)
        for size in config.payload_sizes
    }
    baseline_bandwidth = {
        PAYLOAD_LABELS[size]: model.qpair_credit_bandwidth_gbps(size)
        for size in config.payload_sizes
    }
    improved_bandwidth = {
        PAYLOAD_LABELS[size]: model.crma_credit_bandwidth_gbps(size)
        for size in config.payload_sizes
    }

    report = FigureReport(
        figure_id="fig18",
        title="QPair effective-bandwidth improvement from returning "
              "flow-control credits over CRMA",
        notes="shape target: positive improvement at every size, larger for "
              "smaller packets",
    )
    report.add_series("improvement_percent", improvements, reference=PAPER_REFERENCE)
    report.add_series("qpair_credit_bandwidth_gbps", baseline_bandwidth)
    report.add_series("crma_credit_bandwidth_gbps", improved_bandwidth)
    return report


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_fig18().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
