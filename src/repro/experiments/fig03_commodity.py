"""Figure 3: remote memory over commodity interconnects.

Setup from Section 4.1: a BerkeleyDB-style workload with a 6 GB array
against 4 GB of local memory, random accesses with an 80/20 read/write
ratio.  Remote memory is supplied four ways:

* 10 GbE  -- swap partition behind a vDisk driver;
* IB SRP  -- swap partition behind an SRP virtual block device;
* PCIe RDMA -- swap partition with DMA page transfers;
* PCIe LD/ST -- direct cacheline access through a commodity PCIe
  non-transparent bridge, both with the chip's crippling non-posted-read
  limitation (the measured 191x) and with it fixed (the estimated ~13x).

Scale-down: dataset and local memory are reduced by 256x (6 GB -> 24 MB,
4 GB -> 16 MB), preserving the 2:3 local-to-dataset ratio that sets the
page-fault / remote-access probability.  Execution time is normalised
to the all-local-memory configuration, exactly as in the figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.metrics import slowdown_versus
from repro.analysis.report import FigureReport
from repro.experiments.common import ExperimentPlatform
from repro.interconnects.ethernet import EthernetSwapDevice
from repro.interconnects.infiniband import InfinibandSrpSwapDevice
from repro.interconnects.pcie import PcieLoadStoreBackend, PcieRdmaSwapDevice
from repro.workloads.kvstore import KeyValueConfig, KeyValueWorkload

#: Slowdowns reported in Figure 3 (execution time normalised to all-local).
PAPER_REFERENCE: Dict[str, float] = {
    "ethernet_swap": 42.0,
    "infiniband_srp": 19.0,
    "pcie_rdma": 12.0,
    "pcie_ldst_commodity": 191.0,
    "pcie_ldst_fixed": 13.0,
}


@dataclass
class Fig03Config:
    """Scaled-down experiment parameters."""

    dataset_bytes: int = 24 * 1024 * 1024
    local_bytes: int = 16 * 1024 * 1024
    num_queries: int = 6_000
    instructions_per_query: int = 900
    read_fraction: float = 0.8
    seed: int = 17


def _workload(config: Fig03Config) -> KeyValueWorkload:
    return KeyValueWorkload(KeyValueConfig(
        dataset_bytes=config.dataset_bytes,
        num_queries=config.num_queries,
        read_fraction=config.read_fraction,
        instructions_per_query=config.instructions_per_query,
        seed=config.seed,
    ))


def run_fig03(config: Fig03Config = None,
              platform: ExperimentPlatform = None) -> FigureReport:
    """Measure the Figure 3 slowdowns and return the report."""
    config = config or Fig03Config()
    platform = platform or ExperimentPlatform()

    def run_on(core) -> int:
        return _workload(config).run(core).total_time_ns

    baseline_ns = run_on(platform.all_local_core(config.dataset_bytes))

    times: Dict[str, int] = {}
    times["ethernet_swap"] = run_on(platform.swap_core(
        config.dataset_bytes, config.local_bytes, EthernetSwapDevice()))
    times["infiniband_srp"] = run_on(platform.swap_core(
        config.dataset_bytes, config.local_bytes, InfinibandSrpSwapDevice()))
    times["pcie_rdma"] = run_on(platform.swap_core(
        config.dataset_bytes, config.local_bytes, PcieRdmaSwapDevice()))
    # The load/store configurations place the whole array in the remote
    # window (a contiguous allocation cannot straddle the local/remote
    # boundary), which is what makes the commodity chip's per-read
    # penalty so punishing.
    times["pcie_ldst_commodity"] = run_on(platform.remote_backend_core(
        config.dataset_bytes, local_bytes=0,
        backend=PcieLoadStoreBackend(commodity_chip_limit=True)))
    times["pcie_ldst_fixed"] = run_on(platform.remote_backend_core(
        config.dataset_bytes, local_bytes=0,
        backend=PcieLoadStoreBackend(commodity_chip_limit=False)))

    slowdowns = {name: slowdown_versus(value, baseline_ns)
                 for name, value in times.items()}

    report = FigureReport(
        figure_id="fig03",
        title="Remote memory efficiency with commodity interconnects "
              "(execution time normalised to all-local memory)",
        notes="dataset/local memory scaled 256x down from 6 GB/4 GB; "
              "shape target: Ethernet worst of the swap paths, IB better, PCIe RDMA "
              "best, commodity PCIe LD/ST off the chart, fixed LD/ST moderate",
    )
    report.add_series("slowdown_vs_all_local", slowdowns, reference=PAPER_REFERENCE)
    report.add_series("execution_time_ns",
                      {"all_local": float(baseline_ns),
                       **{name: float(value) for name, value in times.items()}})
    return report


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_fig03().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
