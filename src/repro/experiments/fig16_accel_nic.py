"""Figure 16: sharing remote accelerators (a) and remote NICs (b).

(a) SPLASH2 FFT is offloaded to XFFT accelerators.  The baseline uses
only the local accelerator; the other configurations add one to three
remote accelerators reached through Venice (input/output buffers over
RDMA, mailbox control over CRMA).  The paper reports near-linear
scaling for both the 8 MB and 512 MB datasets, i.e. the Venice path
adds insignificant overhead.

(b) iPerf measures throughput of a bonded interface that combines the
local NIC with one to three remote NICs reached over IP-over-QPair.
Scaling is again the headline, but utilisation of the available line
rate depends on packet size: ~40 % for tiny 4 B payloads (per-packet
forwarding costs dominate) versus ~85 % for 256 B payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.accel.device import FftAccelerator
from repro.accel.mailbox import Mailbox
from repro.analysis.report import FigureReport
from repro.core.sharing.remote_accelerator import (
    AcceleratorPool,
    LocalAcceleratorTarget,
    RemoteAcceleratorTarget,
)
from repro.core.sharing.remote_nic import RemoteNicSharing
from repro.experiments.common import (
    ExperimentPlatform,
    compare_transport_backends,
    series_relative_deviations,
)
from repro.mem.dram import Dram
from repro.nic.nic import Nic, NicConfig
from repro.workloads.fft_offload import FftOffloadConfig, FftOffloadWorkload
from repro.workloads.iperf import IperfConfig, IperfWorkload

#: Near-linear scaling is the stated result; the bars read ~2x/3x/4x.
PAPER_REFERENCE_ACCEL: Dict[str, float] = {
    "LA+1RA": 2.0, "LA+2RA": 3.0, "LA+3RA": 4.0,
}
PAPER_REFERENCE_NIC_SPEEDUP: Dict[str, float] = {
    "LN+1RN": 2.0, "LN+2RN": 3.0, "LN+3RN": 4.0,
}
#: Utilisation of available bandwidth with three remote NICs.
PAPER_REFERENCE_NIC_UTILIZATION: Dict[str, float] = {
    "4B": 40.0, "256B": 85.0,
}


@dataclass
class Fig16Config:
    """Experiment parameters."""

    small_dataset_bytes: int = 8 * 1024 * 1024
    large_dataset_bytes: int = 512 * 1024 * 1024
    block_bytes: int = 512 * 1024
    max_remote: int = 3
    nic_payload_small: int = 4
    nic_payload_large: int = 256
    #: Fabric lanes the remote targets' RDMA staging is striped over.
    stripe_lanes: int = 4

    @classmethod
    def tiny(cls) -> "Fig16Config":
        """Event-fabric-sized datasets, single-lane staging transfers."""
        return cls(small_dataset_bytes=2 * 1024 * 1024,
                   large_dataset_bytes=8 * 1024 * 1024,
                   block_bytes=256 * 1024,
                   stripe_lanes=1)


# ----------------------------------------------------------------------
# Figure 16a: remote accelerators
# ----------------------------------------------------------------------
def _dataset_labels(small_bytes: int, large_bytes: int):
    """Human-readable, collision-free series labels for the two datasets.

    Sub-megabyte sizes read in KB, and two datasets that would round to
    the same label are disambiguated -- a silent label collision would
    overwrite the small dataset's series in the report.
    """
    def fmt(size: int) -> str:
        mb = 1024 * 1024
        return f"{size // mb}MB" if size >= mb else f"{size // 1024}KB"

    small_label, large_label = fmt(small_bytes), fmt(large_bytes)
    if small_label == large_label:
        small_label += "_small"
        large_label += "_large"
    return ((small_label, small_bytes), (large_label, large_bytes))


def _accelerator_pool(platform: ExperimentPlatform, num_remote: int,
                      stripe_lanes: int = 4) -> AcceleratorPool:
    """Local accelerator plus ``num_remote`` remote ones.

    Accelerator staging buffers are large contiguous transfers, so the
    RDMA channel stripes them over four of the node's six fabric lanes
    (Table 1) -- page-sized swap traffic elsewhere keeps using one.
    The event-backed (contended) variant passes ``stripe_lanes=1``: the
    event fabric is single-lane per direction, so its closed-form
    comparison must be too.
    """
    from dataclasses import replace

    targets = [LocalAcceleratorTarget(FftAccelerator(node_id=0),
                                      dram=Dram(platform.dram))]
    for index in range(num_remote):
        donor = index + 1
        rdma = platform.rdma_channel()
        rdma.config = replace(rdma.config, stripe_lanes=stripe_lanes)
        targets.append(RemoteAcceleratorTarget(
            accelerator=FftAccelerator(node_id=donor),
            mailbox=Mailbox(owner_node=donor),
            rdma=rdma,
            crma=platform.crma_channel(),
            exclusive_mapping=True,
        ))
    return AcceleratorPool(targets)


def _fft_makespan_ns(platform: ExperimentPlatform, config: Fig16Config,
                     dataset_bytes: int, num_remote: int) -> float:
    pool = _accelerator_pool(platform, num_remote,
                             stripe_lanes=config.stripe_lanes)
    workload = FftOffloadWorkload(
        FftOffloadConfig(dataset_bytes=dataset_bytes, block_bytes=config.block_bytes),
        targets=list(pool),
    )
    core = platform.all_local_core(dataset_bytes)
    return float(workload.run(core).total_time_ns)


def run_fig16a(config: Fig16Config = None,
               platform: ExperimentPlatform = None) -> FigureReport:
    """Remote-accelerator scaling for the small and large datasets."""
    config = config or Fig16Config()
    platform = platform or ExperimentPlatform()

    report = FigureReport(
        figure_id="fig16a",
        title="Performance of FFT offload normalised to using only the local "
              "accelerator",
        notes="shape target: near-linear scaling with the number of remote "
              "accelerators for both dataset sizes",
    )
    for label, dataset in _dataset_labels(config.small_dataset_bytes,
                                          config.large_dataset_bytes):
        baseline = _fft_makespan_ns(platform, config, dataset, num_remote=0)
        speedups = {}
        for num_remote in range(1, config.max_remote + 1):
            makespan = _fft_makespan_ns(platform, config, dataset, num_remote)
            speedups[f"LA+{num_remote}RA"] = baseline / makespan
        report.add_series(f"speedup_{label}", speedups,
                          reference=PAPER_REFERENCE_ACCEL)
    return report


# ----------------------------------------------------------------------
# Figure 16b: remote NICs
# ----------------------------------------------------------------------
def _nic_sharing(platform: ExperimentPlatform, num_remote: int) -> RemoteNicSharing:
    sharing = RemoteNicSharing(local_nic=Nic(NicConfig(name="local")))
    for index in range(num_remote):
        sharing.attach_remote_nic(Nic(NicConfig(name=f"remote{index}")),
                                  qpair=platform.qpair_channel())
    return sharing


def run_fig16b(config: Fig16Config = None,
               platform: ExperimentPlatform = None) -> FigureReport:
    """Remote-NIC throughput scaling and line-rate utilisation."""
    config = config or Fig16Config()
    platform = platform or ExperimentPlatform()
    iperf = IperfWorkload(IperfConfig(payload_sizes=(config.nic_payload_small,
                                                     config.nic_payload_large)))
    local_nic = Nic(NicConfig(name="baseline-local"))

    report = FigureReport(
        figure_id="fig16b",
        title="Throughput of bonded local + remote NICs normalised to the "
              "local NIC, and utilisation of available bandwidth",
        notes="shape target: near-linear scaling; tiny packets utilise far less "
              "of the available bandwidth than 256B packets",
    )
    for payload, label in ((config.nic_payload_small, "4B"),
                           (config.nic_payload_large, "256B")):
        speedups = {}
        for num_remote in range(1, config.max_remote + 1):
            bond = _nic_sharing(platform, num_remote).bonded_interface()
            speedups[f"LN+{num_remote}RN"] = iperf.speedup_over(bond, local_nic)[payload]
        report.add_series(f"speedup_{label}", speedups,
                          reference=PAPER_REFERENCE_NIC_SPEEDUP)

    utilization = {}
    for payload, label in ((config.nic_payload_small, "4B"),
                           (config.nic_payload_large, "256B")):
        bond = _nic_sharing(platform, config.max_remote).bonded_interface()
        utilization[label] = bond.line_rate_utilization(payload) * 100.0
    report.add_series("utilization_percent_LN+3RN", utilization,
                      reference=PAPER_REFERENCE_NIC_UTILIZATION)
    return report


@dataclass
class Fig16ContendedConfig:
    """Parameters of the event-fabric (contended) Figure 16 run."""

    #: Dataset/payload sizes shared by the closed-form and event runs.
    sizes: Fig16Config = None
    #: Inject closed-loop cross-traffic on the shared pair link.  The
    #: staging streams already saturate the link, so a deeper window
    #: than fig15's is needed before queueing shows through the
    #: baseline-normalised speedups.
    cross_traffic: bool = True
    cross_payload_bytes: int = 1024
    cross_window: int = 8
    cross_turnaround_ns: int = 0
    scheduler: str = "auto"

    def __post_init__(self) -> None:
        self.sizes = self.sizes or Fig16Config.tiny()


def run_fig16_contended(config: Fig16ContendedConfig = None) -> FigureReport:
    """Figure 16 (a+b) over the event-driven fabric vs its closed forms.

    Accelerator staging (RDMA chunk streams), mailbox control (CRMA
    round trips) and the VNICs' QPair forwarding all execute as packets
    on one shared simulator; cross-traffic on the pair link adds the
    queueing delay the closed forms cannot see.  With cross-traffic
    disabled the event series validate the closed forms
    (``max_rel_deviation_percent``).
    """
    config = config or Fig16ContendedConfig()
    sizes = config.sizes

    def run_both(runner):
        return compare_transport_backends(
            runner, sizes,
            cross_traffic=config.cross_traffic,
            cross_payload_bytes=config.cross_payload_bytes,
            cross_window=config.cross_window,
            cross_turnaround_ns=config.cross_turnaround_ns,
            scheduler=config.scheduler)

    closed_a, event_a, platform_a, driver_a = run_both(run_fig16a)
    closed_b, event_b, platform_b, driver_b = run_both(run_fig16b)

    mode = "contended" if config.cross_traffic else "uncontended"
    report = FigureReport(
        figure_id="fig16_contended",
        title="Remote accelerator and NIC sharing over the event-driven "
              f"fabric ({mode}) versus the closed-form transport backend",
        notes="shape target: near-linear accelerator/NIC scaling survives on "
              "the real fabric (sequentially measured transfers stay "
              "pipelined); cross-traffic costs throughput via measured "
              "queueing on the staging and forwarding paths",
    )
    deviations = []
    for closed, event, prefix in ((closed_a, event_a, "accel"),
                                  (closed_b, event_b, "nic")):
        for name, closed_values in closed.series.items():
            report.add_series(f"closed_form_{prefix}_{name}", closed_values,
                              reference=closed.paper_reference.get(name))
            report.add_series(f"event_{prefix}_{name}", event.series[name])
        deviations.extend(series_relative_deviations(closed, event))
    cross_packets = sum(driver.packets_sent
                        for driver in (driver_a, driver_b) if driver)
    events = sum(platform.event_transport().sim.events_processed
                 for platform in (platform_a, platform_b))
    report.add_series("fabric", {
        "max_rel_deviation_percent": 100.0 * max(deviations),
        "events_processed": float(events),
        "cross_traffic_packets": float(cross_packets),
    })
    return report


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_fig16a().to_text())
    print()
    print(run_fig16b().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
