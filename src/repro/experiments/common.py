"""Shared plumbing for the experiment drivers.

Experiments repeatedly need "a core whose memory is supplied in one of
the paper's ways": all local, partially remote via CRMA, partially
remote via a swap device (local disk, commodity interconnect, or Venice
RDMA), or remote via explicit QPair messaging.  The builders here
assemble those memory hierarchies from the substrate pieces so the
per-figure drivers stay readable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.channels.backend import (
    CrossTrafficDriver,
    EventBackend,
    EventTransport,
    TransportBackend,
)
from repro.core.channels.crma import CrmaChannel, CrmaRemoteBackend
from repro.core.channels.path import FabricPath
from repro.core.channels.qpair import QPairChannel, QPairRemoteMemoryBackend
from repro.core.channels.rdma import RdmaChannel, RdmaSwapDevice
from repro.core.config import ChannelPlacement, VeniceConfig
from repro.cpu.core import CpuConfig, TimingCore
from repro.cpu.hierarchy import MemoryHierarchy, RemoteMemoryBackend
from repro.fabric.router import RouterConfig
from repro.mem.cache import Cache, CacheConfig
from repro.mem.dram import Dram, DramConfig
from repro.mem.memory_map import PhysicalMemoryMap
from repro.mem.swap import SwapConfig, SwapDevice, SwapManager

#: Address-space slack reserved above the dataset so writebacks of the
#: top-most cache lines still fall inside visible memory.
_SLACK_BYTES = 1 << 20


def compare_transport_backends(runner, config, cross_traffic: bool = True,
                               cross_payload_bytes: int = 1024,
                               cross_window: int = 2,
                               cross_turnaround_ns: int = 0,
                               scheduler: str = "auto"):
    """Run one figure driver on both transport backends.

    The shared harness behind the ``*_contended`` experiments: the same
    ``runner(config, platform)`` executes once on a closed-form platform
    and once on an event platform (optionally under cross-traffic), so
    the two reports differ only in how channel operations were costed.
    Returns ``(closed_report, event_report, event_platform, driver)``.
    """
    closed = runner(config, ExperimentPlatform())
    event_platform = ExperimentPlatform(backend="event", scheduler=scheduler)
    driver = None
    if cross_traffic:
        driver = event_platform.start_cross_traffic(
            payload_bytes=cross_payload_bytes, window=cross_window,
            turnaround_ns=cross_turnaround_ns)
    event = runner(config, event_platform)
    return closed, event, event_platform, driver


def series_relative_deviations(closed_report, event_report,
                               series_names=None):
    """Per-label relative deviations of event results from closed forms."""
    deviations = []
    for name in (series_names if series_names is not None
                 else closed_report.series):
        for label, closed_value in closed_report.series[name].items():
            if closed_value > 0:
                deviations.append(
                    abs(event_report.series[name][label] - closed_value)
                    / closed_value)
    return deviations


@dataclass
class ExperimentPlatform:
    """Per-experiment platform knobs (scaled-down Table 1 node).

    ``backend="event"`` makes every channel the platform hands out run
    its operations as packets over one shared event-driven fabric (a
    direct requester/donor pair, nodes 0 and 1), so operations see
    queueing from each other and from any cross-traffic started with
    :meth:`start_cross_traffic`.  The default ``"closed_form"`` keeps
    the uncontended formulas of the seed experiments.
    """

    venice: VeniceConfig = None
    cache: CacheConfig = None
    cpu: CpuConfig = None
    dram: DramConfig = None
    #: "closed_form" | "event" transport for the platform's channels.
    backend: str = "closed_form"
    #: Timer backend of the shared simulator (event backend only).
    scheduler: str = "auto"

    def __post_init__(self) -> None:
        self.venice = self.venice or VeniceConfig.pair()
        self.cache = self.cache or CacheConfig()
        self.cpu = self.cpu or CpuConfig()
        self.dram = self.dram or DramConfig()
        if self.backend not in ("closed_form", "event"):
            raise ValueError(f"unknown transport backend {self.backend!r}")
        self._system = None
        self._cross_traffic = None

    # ------------------------------------------------------------------
    # Event-fabric plumbing (event backend only)
    # ------------------------------------------------------------------
    def system(self):
        """The two-node system whose fabric event-backed channels share."""
        if self._system is None:
            from repro.core.system import VeniceSystem

            self._system = VeniceSystem.build(self.venice,
                                              transport_backend=self.backend,
                                              scheduler=self.scheduler)
        return self._system

    def event_transport(self) -> EventTransport:
        if self.backend != "event":
            raise ValueError("the closed-form platform has no event transport")
        return self.system().event_transport()

    def start_cross_traffic(self, payload_bytes: int = 256, window: int = 4,
                            turnaround_ns: int = 200) -> CrossTrafficDriver:
        """Contend the pair link: closed-loop flows in both directions.

        Restarting with new parameters stops the previous driver first,
        so exactly one configured load runs at a time.
        """
        if self._cross_traffic is not None:
            self._cross_traffic.stop()
        self._cross_traffic = CrossTrafficDriver(
            self.event_transport(), flows=[(0, 1), (1, 0)],
            payload_bytes=payload_bytes, window=window,
            turnaround_ns=turnaround_ns)
        return self._cross_traffic

    def _backend_for(self, path: FabricPath,
                     through_router: bool) -> Optional[TransportBackend]:
        if self.backend != "event":
            return None  # channels default to ClosedFormBackend(path)
        if through_router or path.placement is not ChannelPlacement.ON_CHIP:
            raise ValueError(
                "the event-backed platform models the on-chip direct pair; "
                "off-chip placement and extra routers are closed-form knobs")
        return EventBackend(self.event_transport(), src=0, dst=1, path=path)

    # ------------------------------------------------------------------
    # Fabric paths and channels between the two nodes of the experiment
    # ------------------------------------------------------------------
    def path(self, placement: ChannelPlacement = ChannelPlacement.ON_CHIP,
             through_router: bool = False, hops: int = 1) -> FabricPath:
        fabric_path = FabricPath(fabric=self.venice.fabric, hops=hops,
                                 placement=placement)
        if through_router:
            fabric_path = fabric_path.with_router(RouterConfig())
        return fabric_path

    def crma_channel(self, placement: ChannelPlacement = ChannelPlacement.ON_CHIP,
                     through_router: bool = False) -> CrmaChannel:
        path = self.path(placement, through_router)
        return CrmaChannel(config=self.venice.crma, path=path,
                           donor_dram=Dram(self.dram),
                           backend=self._backend_for(path, through_router))

    def rdma_channel(self, placement: ChannelPlacement = ChannelPlacement.ON_CHIP,
                     through_router: bool = False) -> RdmaChannel:
        path = self.path(placement, through_router)
        return RdmaChannel(config=self.venice.rdma, path=path,
                           donor_dram=Dram(self.dram),
                           backend=self._backend_for(path, through_router))

    def qpair_channel(self, placement: ChannelPlacement = ChannelPlacement.ON_CHIP,
                      through_router: bool = False) -> QPairChannel:
        path = self.path(placement, through_router)
        return QPairChannel(config=self.venice.qpair, path=path,
                            backend=self._backend_for(path, through_router))

    # ------------------------------------------------------------------
    # Core builders for the paper's memory-supply strategies
    # ------------------------------------------------------------------
    def _core(self, hierarchy: MemoryHierarchy) -> TimingCore:
        return TimingCore(hierarchy, config=self.cpu)

    def all_local_core(self, dataset_bytes: int) -> TimingCore:
        """Ideal configuration: the whole dataset fits in local memory."""
        memory_map = PhysicalMemoryMap(dataset_bytes + _SLACK_BYTES, node_id=0)
        hierarchy = MemoryHierarchy(memory_map, cache=Cache(self.cache),
                                    dram=Dram(self.dram))
        return self._core(hierarchy)

    def swap_core(self, dataset_bytes: int, local_bytes: int,
                  device: SwapDevice, page_bytes: int = 4096,
                  fault_overhead_ns: int = 8000) -> TimingCore:
        """Dataset paged against ``local_bytes`` of resident frames.

        Models the conventional configuration: the OS keeps
        ``local_bytes`` worth of the dataset resident and pages the rest
        to ``device`` (local disk, vDisk over a commodity interconnect,
        or the Venice RDMA block device).
        """
        if local_bytes <= 0 or local_bytes > dataset_bytes:
            raise ValueError("local_bytes must be positive and below the dataset size")
        # Visible physical memory is kept to a single page so that every
        # dataset address is swap-backed and the swap manager decides
        # residency (the resident-frame count is what models the local
        # memory actually available to the workload).
        memory_map = PhysicalMemoryMap(4096, node_id=0)
        swap = SwapManager(
            SwapConfig(page_bytes=page_bytes,
                       resident_frames=max(1, local_bytes // page_bytes),
                       fault_overhead_ns=fault_overhead_ns),
            device=device,
        )
        hierarchy = MemoryHierarchy(memory_map, cache=Cache(self.cache),
                                    dram=Dram(self.dram), swap=swap)
        return self._core(hierarchy)

    def remote_backend_core(self, dataset_bytes: int, local_bytes: int,
                            backend: RemoteMemoryBackend,
                            donor_node: int = 1) -> TimingCore:
        """Dataset split: ``local_bytes`` local, the rest remote via ``backend``.

        Models direct remote memory access (hot-plugged region served by
        CRMA, QPair messaging, or a commodity load/store bridge).  When
        ``local_bytes`` is zero the whole dataset lives remotely.
        """
        if local_bytes < 0 or local_bytes > dataset_bytes:
            raise ValueError("local_bytes must be within [0, dataset size]")
        local_capacity = max(local_bytes, 4096)
        memory_map = PhysicalMemoryMap(local_capacity, node_id=0)
        remote_bytes = dataset_bytes - local_bytes + _SLACK_BYTES
        memory_map.hot_plug_remote(remote_bytes, donor_node=donor_node,
                                   donor_base=0, label="experiment-remote")
        hierarchy = MemoryHierarchy(memory_map, cache=Cache(self.cache),
                                    dram=Dram(self.dram), remote_backend=backend)
        return self._core(hierarchy)

    def crma_core(self, dataset_bytes: int, local_bytes: int,
                  placement: ChannelPlacement = ChannelPlacement.ON_CHIP,
                  through_router: bool = False) -> TimingCore:
        """Remote portion of the dataset served by the CRMA channel."""
        backend = CrmaRemoteBackend(self.crma_channel(placement, through_router))
        return self.remote_backend_core(dataset_bytes, local_bytes, backend)

    def qpair_memory_core(self, dataset_bytes: int, local_bytes: int,
                          placement: ChannelPlacement = ChannelPlacement.ON_CHIP,
                          through_router: bool = False,
                          remote_handler_ns: int = 14_000) -> TimingCore:
        """Remote portion accessed by explicit QPair request/response."""
        backend = QPairRemoteMemoryBackend(
            self.qpair_channel(placement, through_router),
            donor_dram=Dram(self.dram),
            remote_handler_ns=remote_handler_ns,
        )
        return self.remote_backend_core(dataset_bytes, local_bytes, backend)

    def rdma_swap_core(self, dataset_bytes: int, local_bytes: int,
                       placement: ChannelPlacement = ChannelPlacement.ON_CHIP,
                       through_router: bool = False) -> TimingCore:
        """Remote portion supplied as swap space over the RDMA channel."""
        device = RdmaSwapDevice(self.rdma_channel(placement, through_router))
        return self.swap_core(dataset_bytes, local_bytes, device)
