"""Cluster sweeps with *real* concurrent workload interference.

The PR 2 ``contention`` sweep measures queueing delay by blasting
injected noise waves at timed probe packets; the contention there is
synthetic cross-traffic.  This experiment instead makes the borrowers
themselves the load: every compute node of an event-backed
:class:`~repro.cluster.Cluster` borrows remote memory through the
batched matchmaker (:meth:`~repro.cluster.matchmaker.Matchmaker
.borrow_many`), and then all borrowers issue CRMA reads on their shares
*concurrently* -- submitted as :class:`~repro.core.channels.backend
.PendingOp` handles and driven together through one
:meth:`~repro.core.channels.backend.EventTransport.drive_all` call per
wave -- so every measured packet queues behind other borrowers' measured
packets on the shared fleet fabric.

Each node count is also run through the *serialized* driver (the
pre-refactor behaviour: each op runs to completion before the next is
submitted, so ops never coexist on the fabric).  Two quantities fall
out per cluster size:

* ``per_borrower_slowdown`` -- mean concurrent op latency over mean
  serialized op latency.  Any value above 1.0 is interference between
  *measured* ops, which the serialized driver cannot produce by
  construction.
* ``overlap_speedup`` -- serialized span over concurrent makespan: how
  much sim time overlapping the same op budget saves.  With N
  borrowers on mostly disjoint routes this approaches N.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import FigureReport
from repro.cluster import Cluster, ClusterConfig

#: Bytes of remote memory each borrower requests (small: the sweep
#: measures transport interference, not capacity pressure).
_MEMORY_PER_BORROWER = 1 << 20


@dataclass
class ClusterContendedConfig:
    """Sweep parameters (node counts 2 -> 16 by default)."""

    node_counts: Tuple[int, ...] = (2, 4, 8, 16)
    #: "fat_tree" or "star"; the 2-node point is always the direct pair.
    topology: str = "fat_tree"
    #: Compute nodes per fat-tree leaf router.
    leaf_radix: int = 4
    #: Spine routers joining the leaves (fat-tree only).
    num_spines: int = 2
    #: CRMA read payload (one cacheline).
    read_bytes: int = 64
    #: Concurrent read waves issued per borrower share.
    reads_per_borrower: int = 8
    #: Remote memory each borrower requests.
    memory_per_borrower: int = _MEMORY_PER_BORROWER
    #: Timer backend for the shared simulators.
    scheduler: str = "auto"

    def __post_init__(self) -> None:
        if not self.node_counts or min(self.node_counts) < 2:
            raise ValueError("node counts must all be at least 2")
        if self.topology not in ("fat_tree", "star"):
            raise ValueError(
                f"unsupported contended topology {self.topology!r}")
        if self.reads_per_borrower < 1:
            raise ValueError("each borrower needs at least one read")
        if self.scheduler not in ("auto", "heap", "calendar"):
            raise ValueError(f"unsupported scheduler {self.scheduler!r}")
        self.node_counts = tuple(sorted(set(self.node_counts)))


def _cluster_config(config: ClusterContendedConfig,
                    num_nodes: int) -> ClusterConfig:
    if num_nodes == 2:
        return ClusterConfig(num_nodes=2, topology="direct_pair",
                             transport_backend="event",
                             scheduler=config.scheduler)
    return ClusterConfig(num_nodes=num_nodes, topology=config.topology,
                         leaf_radix=config.leaf_radix,
                         num_spines=config.num_spines,
                         transport_backend="event",
                         scheduler=config.scheduler)


def _provision(cluster: Cluster, config: ClusterContendedConfig):
    """Every compute node borrows memory through the batched matchmaker."""
    requests = [(node, config.memory_per_borrower)
                for node in cluster.node_ids]
    batches = cluster.matchmaker.borrow_many(requests)
    return [share for batch in batches for share in batch]


def _run_concurrent(config: ClusterContendedConfig,
                    num_nodes: int) -> Dict[str, float]:
    """All borrowers' reads per wave submitted together, driven together."""
    cluster = Cluster(_cluster_config(config, num_nodes))
    shares = _provision(cluster, config)
    transport = cluster.event_transport()
    latencies: Dict[object, List[int]] = {share: [] for share in shares}
    for _wave in range(config.reads_per_borrower):
        ops = [(share, share.channel.submit_read(config.read_bytes))
               for share in shares]
        transport.drive_all([op for _share, op in ops])
        for share, op in ops:
            latencies[share].append(op.latency_ns)
    per_share_mean = {share: sum(values) / len(values)
                      for share, values in latencies.items()}
    hottest = max(link.busy_fraction()
                  for link in transport.fabric.links.values())
    return {
        "per_share_mean_ns": per_share_mean,
        "makespan_ns": float(transport.sim.now),
        "events": float(transport.sim.events_processed),
        "hottest_link_busy": hottest,
    }


def _run_serialized(config: ClusterContendedConfig,
                    num_nodes: int) -> Dict[str, float]:
    """Same op budget, pre-refactor driving: one op at a time."""
    cluster = Cluster(_cluster_config(config, num_nodes))
    shares = _provision(cluster, config)
    transport = cluster.event_transport()
    per_share_mean: Dict[object, float] = {}
    for share in shares:
        values = [share.channel.read_latency_ns(config.read_bytes)
                  for _ in range(config.reads_per_borrower)]
        per_share_mean[share] = sum(values) / len(values)
    return {
        "per_share_mean_ns": per_share_mean,
        "span_ns": float(transport.sim.now),
        "events": float(transport.sim.events_processed),
    }


def run_fig_cluster_contended(
        config: Optional[ClusterContendedConfig] = None) -> FigureReport:
    """Sweep node counts; report overlap speedup and borrower slowdown."""
    config = config or ClusterContendedConfig()

    serialized_ns: Dict[str, float] = {}
    concurrent_ns: Dict[str, float] = {}
    slowdown: Dict[str, float] = {}
    overlap_speedup: Dict[str, float] = {}
    busy_pct: Dict[str, float] = {}
    events: Dict[str, float] = {}

    for num_nodes in config.node_counts:
        label = f"{num_nodes}_nodes"
        concurrent = _run_concurrent(config, num_nodes)
        serialized = _run_serialized(config, num_nodes)

        # The two runs are built identically (same borrow batch, same
        # donors), so their share lists align pairwise in creation
        # order: slowdown is a per-borrower-share ratio, then averaged.
        concurrent_means = list(concurrent["per_share_mean_ns"].values())
        serialized_means = list(serialized["per_share_mean_ns"].values())
        ratios = [conc / ser for conc, ser
                  in zip(concurrent_means, serialized_means)]

        serialized_ns[label] = sum(serialized_means) / len(serialized_means)
        concurrent_ns[label] = sum(concurrent_means) / len(concurrent_means)
        slowdown[label] = sum(ratios) / len(ratios)
        overlap_speedup[label] = (serialized["span_ns"]
                                  / concurrent["makespan_ns"])
        busy_pct[label] = 100.0 * concurrent["hottest_link_busy"]
        events[label] = concurrent["events"] + serialized["events"]

    report = FigureReport(
        figure_id="fig_cluster_contended",
        title="Concurrent borrowers on the shared fleet fabric versus the "
              f"serialized op driver ({config.topology}, "
              f"{config.reads_per_borrower} reads/borrower, "
              "2-node pair baseline)",
        notes="shape target: overlap_speedup grows towards the borrower "
              "count (submitted ops share sim time) while "
              "per_borrower_slowdown rises above 1.0 wherever borrowers' "
              "measured packets queue behind each other -- interference "
              "the one-op-at-a-time driver cannot produce",
    )
    report.add_series("serialized_read_ns", serialized_ns)
    report.add_series("concurrent_read_ns", concurrent_ns)
    report.add_series("per_borrower_slowdown", slowdown)
    report.add_series("overlap_speedup", overlap_speedup)
    report.add_series("hottest_link_busy_percent", busy_pct)
    report.add_series("events_processed", events)
    return report


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_fig_cluster_contended().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
