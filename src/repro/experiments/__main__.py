"""Entry point: ``python -m repro.experiments [ids... | --all]``."""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
