"""Cluster contention: queueing delay measured on the event-driven fabric.

The cluster-scaling sweep (``fig_cluster_scaling``) answers every
latency query from the :class:`~repro.cluster.latency_cache
.ClusterLatencyCache` closed forms, which by construction model an
*uncontended* fabric.  This experiment runs the same cluster shapes
over the **event-driven** fabric (PHY + datalink + switch stacks from
:meth:`VeniceSystem.build_event_fabric`): probe packets are timed
end-to-end, once on an idle fabric and once while every node blasts
cross-traffic at the fleet, so the sweep separates three quantities
per cluster size:

* the closed-form one-way latency (what the latency cache predicts),
* the measured uncontended latency (event fabric, no load -- the delta
  to the closed form is the datalink/flow-control machinery the closed
  forms intentionally omit), and
* the measured contended latency (event fabric under cross-traffic --
  the delta to the uncontended measurement is pure queueing delay).

Link ``busy_fraction`` of the hottest link quantifies how loaded the
fabric actually was.  Running 2 -> 16 nodes over the event fabric is
only practical with the fast-path engine: a 16-node contended sweep
dispatches hundreds of thousands of events.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import FigureReport
from repro.cluster import Cluster, ClusterConfig, ClusterLatencyCache
from repro.fabric.packet import Packet, PacketKind
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRNG


@dataclass
class ClusterContentionConfig:
    """Sweep parameters (node counts 2 -> 16 by default)."""

    node_counts: Tuple[int, ...] = (2, 4, 8, 16)
    #: "fat_tree" or "star"; the 2-node point is always the direct pair.
    topology: str = "fat_tree"
    #: Compute nodes per fat-tree leaf router.
    leaf_radix: int = 4
    #: Spine routers joining the leaves (fat-tree only).
    num_spines: int = 2
    #: Probe payload (a cacheline read response).
    payload_bytes: int = 64
    #: Timed probe packets injected per compute node.
    probes_per_node: int = 4
    #: Cross-traffic packets injected per compute node per probe wave.
    cross_traffic_per_node: int = 12
    #: Cross-traffic payload.
    cross_payload_bytes: int = 256
    #: Cross-traffic leads each probe by up to this many ns, so the noise
    #: occupies link queues while the probe transits (injecting noise at
    #: the probe's own timestamp would lose the race through the switch
    #: and leave the queues empty).
    cross_lead_ns: int = 30_000
    #: Gap between probe waves, ns (wide enough to drain an idle fabric).
    wave_gap_ns: int = 400_000
    #: RNG seed for destination choices (deterministic sweeps).
    seed: int = 2016
    #: Closed-loop mode: probes are request/response round-trips (the
    #: destination answers every probe with a same-sized response) and
    #: cross-traffic packets are acknowledged too, so the sweep measures
    #: real end-to-end round-trips with credit feedback on both legs
    #: instead of one-way deliveries.
    closed_loop: bool = False
    #: Timer backend for the simulator ("auto", "heap" or "calendar").
    scheduler: str = "auto"

    def __post_init__(self) -> None:
        if not self.node_counts or min(self.node_counts) < 2:
            raise ValueError("node counts must all be at least 2")
        if self.topology not in ("fat_tree", "star"):
            raise ValueError(f"unsupported contention topology {self.topology!r}")
        if self.probes_per_node < 1:
            raise ValueError("each node needs at least one probe")
        if self.scheduler not in ("auto", "heap", "calendar"):
            raise ValueError(f"unsupported scheduler {self.scheduler!r}")
        self.node_counts = tuple(sorted(set(self.node_counts)))


def _cluster_config(config: ClusterContentionConfig, num_nodes: int) -> ClusterConfig:
    if num_nodes == 2:
        return ClusterConfig(num_nodes=2, topology="direct_pair")
    return ClusterConfig(num_nodes=num_nodes, topology=config.topology,
                         leaf_radix=config.leaf_radix,
                         num_spines=config.num_spines)


def _probe_plan(cluster: Cluster, config: ClusterContentionConfig,
                rng: DeterministicRNG) -> List[Tuple[int, int]]:
    """(src, dst) pairs for the timed probes, biased to long routes."""
    compute = cluster.topology.compute_nodes
    pairs: List[Tuple[int, int]] = []
    for src in compute:
        others = [node for node in compute if node != src]
        # The farthest destination plus rng picks: the sweep times both
        # the worst route shape and a sample of the average ones.
        farthest = max(others, key=lambda dst: cluster.topology.hop_count(src, dst))
        pairs.append((src, farthest))
        for _ in range(config.probes_per_node - 1):
            pairs.append((src, rng.choice(others)))
    return pairs


class _FabricRun:
    """One event-fabric execution: probes (optionally plus cross-traffic).

    In closed-loop mode every delivered probe request is answered with a
    same-sized response injected at the destination (and cross-traffic
    is acknowledged the same way), so the recorded latencies are full
    round-trips over the contended fabric -- request and response both
    subject to credit flow control and queueing.
    """

    def __init__(self, cluster: Cluster, config: ClusterContentionConfig,
                 probes: List[Tuple[int, int]], contended: bool,
                 rng: DeterministicRNG):
        self.closed_loop = config.closed_loop
        self._probe_payload = config.payload_bytes
        self.fabric = cluster.system.build_event_fabric(
            sim=Simulator(scheduler=config.scheduler))
        self.latencies_ns: Dict[int, int] = {}
        self._inject_times: Dict[int, int] = {}
        compute = cluster.topology.compute_nodes
        sim = self.fabric.sim
        # Sorted attach order: sink attachment must not depend on the
        # fabric dict's construction history.
        for node_id in sorted(self.fabric.switches):
            self.fabric.switches[node_id].attach_local_sink(self._on_delivery)
        probe_kind = (PacketKind.CRMA_READ if config.closed_loop
                      else PacketKind.CRMA_READ_RESP)
        for wave, (src, dst) in enumerate(probes):
            at = (wave + 1) * config.wave_gap_ns
            probe = Packet(src=src, dst=dst, kind=probe_kind,
                           payload_bytes=config.payload_bytes, created_at=at)
            self._inject_times[probe.packet_id] = at
            sim.schedule_at(at, self.fabric.switches[src].inject, probe)
            if contended:
                for node in compute:
                    others = [n for n in compute if n != node]
                    for _ in range(config.cross_traffic_per_node):
                        noise = Packet(src=node, dst=rng.choice(others),
                                       kind=PacketKind.RDMA_CHUNK,
                                       payload_bytes=config.cross_payload_bytes)
                        noise_at = at - rng.uniform_int(1, config.cross_lead_ns)
                        sim.schedule_at(noise_at,
                                        self.fabric.switches[node].inject,
                                        noise)
        sim.run_until_idle()

    def _on_delivery(self, packet: Packet) -> None:
        if self.closed_loop:
            kind = packet.kind
            if kind is PacketKind.CRMA_READ:
                # Probe request reached its destination: answer it.
                response = Packet(src=packet.dst, dst=packet.src,
                                  kind=PacketKind.CRMA_READ_RESP,
                                  payload_bytes=self._probe_payload,
                                  payload=packet.packet_id)
                self.fabric.switches[packet.dst].inject(response)
                return
            if kind is PacketKind.RDMA_CHUNK:
                # Cross-traffic is acknowledged too: the reverse leg
                # carries load (and credit feedback) like real traffic.
                ack = Packet(src=packet.dst, dst=packet.src,
                             kind=PacketKind.RDMA_ACK, payload_bytes=64)
                self.fabric.switches[packet.dst].inject(ack)
                return
            if kind is PacketKind.CRMA_READ_RESP:
                injected_at = self._inject_times.get(packet.payload)
                if injected_at is not None:
                    self.latencies_ns[packet.payload] = (
                        self.fabric.sim.now - injected_at)
                return
            return
        injected_at = self._inject_times.get(packet.packet_id)
        if injected_at is not None:
            self.latencies_ns[packet.packet_id] = self.fabric.sim.now - injected_at

    @property
    def mean_latency_ns(self) -> float:
        return statistics.mean(self.latencies_ns.values())

    def max_busy_fraction(self) -> float:
        return max(link.busy_fraction() for link in self.fabric.links.values())

    def stats_dump(self) -> str:
        """Canonical JSON dump of every fabric component's statistics.

        Byte-identical across runs with the same seed; the determinism
        regression tests compare these dumps directly.
        """
        dump = {
            "sim": {"now": self.fabric.sim.now,
                    "events": self.fabric.sim.events_processed},
            "links": {name.name: name.stats.snapshot()
                      for name in self.fabric.links.values()},  # simlint: disable=SIM001 -- json.dumps(sort_keys=True) canonicalises
            "datalinks": {dl.name: dl.stats.snapshot()
                          for dl in self.fabric.datalinks.values()},  # simlint: disable=SIM001 -- json.dumps(sort_keys=True) canonicalises
            "switches": {sw.name: sw.stats.snapshot()
                         for sw in self.fabric.switches.values()},  # simlint: disable=SIM001 -- json.dumps(sort_keys=True) canonicalises
            "probe_latencies": sorted(self.latencies_ns.values()),
        }
        return json.dumps(dump, sort_keys=True)


def run_fig_cluster_contention(config: Optional[ClusterContentionConfig] = None
                               ) -> FigureReport:
    """Sweep node counts over the event fabric and report queueing delay."""
    config = config or ClusterContentionConfig()
    cache = ClusterLatencyCache()

    closed_form_ns: Dict[str, float] = {}
    uncontended_ns: Dict[str, float] = {}
    contended_ns: Dict[str, float] = {}
    queueing_delay_ns: Dict[str, float] = {}
    queueing_delay_pct: Dict[str, float] = {}
    model_delta_ns: Dict[str, float] = {}
    busy_fraction_pct: Dict[str, float] = {}
    events: Dict[str, float] = {}

    for num_nodes in config.node_counts:
        label = f"{num_nodes}_nodes"
        cluster = Cluster(_cluster_config(config, num_nodes),
                          latency_cache=cache)
        rng = DeterministicRNG(config.seed + num_nodes)
        probes = _probe_plan(cluster, config, rng)

        # Closed-loop probes pay the one-way latency twice (request and
        # same-sized response), so the comparable closed form doubles.
        legs = 2 if config.closed_loop else 1
        closed_form_ns[label] = statistics.mean(
            legs * cluster.path_between(src, dst).one_way_latency_ns(
                config.payload_bytes)
            for src, dst in probes)

        idle = _FabricRun(cluster, config, probes, contended=False,
                          rng=DeterministicRNG(config.seed + num_nodes))
        loaded = _FabricRun(cluster, config, probes, contended=True,
                            rng=DeterministicRNG(config.seed + num_nodes))

        uncontended_ns[label] = idle.mean_latency_ns
        contended_ns[label] = loaded.mean_latency_ns
        queueing_delay_ns[label] = loaded.mean_latency_ns - idle.mean_latency_ns
        queueing_delay_pct[label] = (
            100.0 * queueing_delay_ns[label] / idle.mean_latency_ns)
        model_delta_ns[label] = idle.mean_latency_ns - closed_form_ns[label]
        busy_fraction_pct[label] = 100.0 * loaded.max_busy_fraction()
        events[label] = float(idle.fabric.sim.events_processed
                              + loaded.fabric.sim.events_processed)

    mode = "closed-loop round-trips" if config.closed_loop else "one-way probes"
    report = FigureReport(
        figure_id="fig_cluster_contention",
        title="Queueing delay under cross-traffic versus the latency-cache "
              f"closed forms ({config.topology} fabric, {mode}, "
              "2-node pair baseline)",
        notes="shape target: queueing delay grows with cluster size while the "
              "closed forms stay load-blind; model_delta is the load-independent "
              "datalink/flow-control cost the closed forms omit",
    )
    report.add_series("closed_form_latency_ns", closed_form_ns)
    report.add_series("measured_uncontended_ns", uncontended_ns)
    report.add_series("measured_contended_ns", contended_ns)
    report.add_series("queueing_delay_ns", queueing_delay_ns)
    report.add_series("queueing_delay_percent", queueing_delay_pct)
    report.add_series("model_delta_ns_uncontended_vs_closed_form", model_delta_ns)
    report.add_series("hottest_link_busy_percent", busy_fraction_pct)
    report.add_series("events_processed", events)
    report.add_series("latency_cache", {
        "hit_rate_percent": 100.0 * cache.hit_rate,
        "lookups": float(cache.lookups),
        "entries": float(len(cache)),
    })
    return report


def run_fig_cluster_contention_closed_loop(
        config: Optional[ClusterContentionConfig] = None) -> FigureReport:
    """Closed-loop variant: contended request/response round-trips."""
    if config is None:
        config = ClusterContentionConfig(closed_loop=True)
    elif not config.closed_loop:
        config = replace(config, closed_loop=True)
    return run_fig_cluster_contention(config)


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_fig_cluster_contention().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
