"""Section 7.3: hardware cost of the Venice on-chip support.

The paper synthesises the radix-7 switch plus the three transport
channels in 28 nm and reports 2.73 mm^2 of logic, 32 KB of SRAM and
about 3.5 mm^2 of PHYs -- roughly 2 % of a Haswell-EP-class die.  It
also argues that CRMA support is cheaper than QPair support: about half
the LUTs and tens of kilobytes less SRAM.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.hardware_cost import VeniceHardwareCostModel
from repro.analysis.report import FigureReport

PAPER_REFERENCE: Dict[str, float] = {
    "logic_area_mm2": 2.73,
    "sram_kb": 32.0,
    "phy_area_mm2": 3.5,
    "fraction_of_host_die_percent": 2.0,
    "qpair_to_crma_logic_ratio": 2.0,
}


def run_hardware_cost(model: VeniceHardwareCostModel = None) -> FigureReport:
    """Evaluate the area model and return paper-versus-model values."""
    model = model or VeniceHardwareCostModel()
    measured = {
        "logic_area_mm2": model.logic_area_mm2(),
        "sram_kb": model.total_sram_kb(),
        "phy_area_mm2": model.phy_area_mm2(),
        "fraction_of_host_die_percent": model.fraction_of_host_die() * 100.0,
        "qpair_to_crma_logic_ratio": model.qpair_to_crma_logic_ratio(),
    }
    report = FigureReport(
        figure_id="sec7.3",
        title="Hardware cost of Venice on-chip support (28 nm)",
        notes="shape target: a few mm^2 total, a small single-digit percentage "
              "of a server die, QPair roughly twice the logic of CRMA",
    )
    report.add_series("hardware_cost", measured, reference=PAPER_REFERENCE)
    report.add_series("area_breakdown_mm2", model.breakdown())
    return report


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_hardware_cost().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
