"""Figure 17: multi-modality -- no channel can replace the others.

Three usage scenarios, each run over each of the three transport
channels, normalised to the best-performing channel for that scenario:

* **In-Mem DB, random access** -- fine-grained random reads/writes of a
  remote dataset.  CRMA wins (transparent cacheline fills); QPair pays
  per-access software messaging; RDMA-backed paging moves whole pages
  for single-record accesses and loses badly.
* **CC, contiguous access** -- streaming scans.  Page-granularity RDMA
  wins (each transfer amortises over a whole page); CRMA pays the
  fabric round trip per cache line; QPair messaging is worst.
* **iPerf, message passing** -- a producer/consumer message stream.
  QPair wins (hardware-managed queues); RDMA pays descriptor setup per
  message; CRMA requires the consumer to pull the payload with remote
  loads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.report import FigureReport
from repro.core.channels.collaboration import AccessDemand, AdaptiveChannelSelector, ChannelChoice
from repro.experiments.common import ExperimentPlatform
from repro.workloads.connected_components import (
    ConnectedComponentsConfig,
    ConnectedComponentsWorkload,
)
from repro.workloads.kvstore import KeyValueConfig, KeyValueWorkload

#: Figure 17 values (normalised to the best channel per scenario = 100).
PAPER_REFERENCE: Dict[str, Dict[str, float]] = {
    "inmem_db_random": {"crma": 100.0, "rdma": 14.5, "qpair": 23.7},
    "cc_contiguous": {"crma": 57.7, "rdma": 100.0, "qpair": 12.2},
    "iperf_messaging": {"crma": 4.2, "rdma": 12.0, "qpair": 100.0},
}

CHANNELS = ("crma", "rdma", "qpair")


@dataclass
class Fig17Config:
    """Scaled-down experiment parameters.

    The CC graph is sized so that its hot label array fits within the
    local quarter of memory, as it does (relative to Spark's executor
    memory) in the paper's setup -- the cold edge list is what streams
    over the remote path.
    """

    dataset_bytes: int = 8 * 1024 * 1024
    kv_queries: int = 3_000
    cc_vertices: int = 4_096
    cc_edges: int = 21_461
    message_bytes: int = 256
    seed: int = 47


def _kv_time_ns(platform: ExperimentPlatform, config: Fig17Config, channel: str) -> float:
    workload = KeyValueWorkload(KeyValueConfig(
        dataset_bytes=config.dataset_bytes, num_queries=config.kv_queries,
        instructions_per_query=400, seed=config.seed))
    core = _memory_core(platform, config.dataset_bytes, channel)
    return float(workload.run(core).total_time_ns)


def _cc_time_ns(platform: ExperimentPlatform, config: Fig17Config, channel: str) -> float:
    workload = ConnectedComponentsWorkload(ConnectedComponentsConfig(
        num_vertices=config.cc_vertices, num_edges=config.cc_edges,
        iterations=2, seed=config.seed))
    core = _memory_core(platform, workload.config.dataset_bytes, channel)
    return float(workload.run(core).total_time_ns)


def _memory_core(platform: ExperimentPlatform, dataset_bytes: int, channel: str):
    """Core whose remote data is reached over the requested channel."""
    if channel == "crma":
        return platform.crma_core(dataset_bytes, local_bytes=0)
    if channel == "qpair":
        return platform.qpair_memory_core(dataset_bytes, local_bytes=0)
    if channel == "rdma":
        # Remote data reached at page granularity over the RDMA block
        # device; as in the Figure 15 setup, a quarter of the dataset
        # stays in local resident frames.
        return platform.rdma_swap_core(dataset_bytes,
                                       local_bytes=max(4096, dataset_bytes // 4))
    raise ValueError(f"unknown channel {channel!r}")


def _messaging_bandwidth_gbps(platform: ExperimentPlatform, config: Fig17Config,
                              channel: str) -> float:
    """Sustained message-stream bandwidth over one channel."""
    message = config.message_bytes
    if channel == "qpair":
        return platform.qpair_channel().streaming_bandwidth_gbps(message)
    if channel == "rdma":
        rdma = platform.rdma_channel()
        per_message_ns = rdma.transfer_latency_ns(message)
        return message * 8 / per_message_ns
    if channel == "crma":
        # Consumer-pull messaging: the consumer loads the payload from
        # the producer's memory line by line and then checks the flag.
        crma = platform.crma_channel()
        line = 32
        lines = max(1, -(-message // line))
        per_message_ns = lines * crma.read_latency_ns(line) + crma.read_latency_ns(8)
        return message * 8 / per_message_ns
    raise ValueError(f"unknown channel {channel!r}")


def run_fig17(config: Fig17Config = None,
              platform: ExperimentPlatform = None) -> FigureReport:
    """Measure the three scenarios over the three channels."""
    config = config or Fig17Config()
    platform = platform or ExperimentPlatform()

    # Performance = 1/time for the memory scenarios, bandwidth for iPerf.
    scenarios: Dict[str, Dict[str, float]] = {}
    scenarios["inmem_db_random"] = {
        channel: 1e12 / _kv_time_ns(platform, config, channel) for channel in CHANNELS
    }
    scenarios["cc_contiguous"] = {
        channel: 1e12 / _cc_time_ns(platform, config, channel) for channel in CHANNELS
    }
    scenarios["iperf_messaging"] = {
        channel: _messaging_bandwidth_gbps(platform, config, channel)
        for channel in CHANNELS
    }

    report = FigureReport(
        figure_id="fig17",
        title="Resource sharing over the three channels, normalised to the "
              "best channel per scenario (=100)",
        notes="shape target: CRMA wins random access, RDMA wins contiguous "
              "access, QPair wins message passing",
    )
    for scenario, values in scenarios.items():
        best = max(values.values())
        normalised = {channel: value / best * 100.0 for channel, value in values.items()}
        report.add_series(scenario, normalised, reference=PAPER_REFERENCE[scenario])
    return report


def adaptive_selection_matches_best(config: Fig17Config = None,
                                    platform: ExperimentPlatform = None) -> Dict[str, bool]:
    """Check that the adaptive library picks each scenario's best channel."""
    report = run_fig17(config, platform)
    selector = AdaptiveChannelSelector()
    demands = {
        "inmem_db_random": AccessDemand(granularity_bytes=64, random_access=True),
        "cc_contiguous": AccessDemand(granularity_bytes=4096, random_access=False,
                                      total_bytes=8 * 1024 * 1024),
        "iperf_messaging": AccessDemand(granularity_bytes=256, message_passing=True),
    }
    outcome = {}
    for scenario, demand in demands.items():
        best_channel = max(report.series[scenario], key=report.series[scenario].get)
        outcome[scenario] = selector.select(demand) is ChannelChoice(best_channel)
    return outcome


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_fig17().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
