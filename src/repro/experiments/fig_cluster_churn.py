"""Cluster churn: deterministic fault campaigns over the event fabric.

The contended sweeps measure steady-state interference; this experiment
measures *recovery*.  An event-backed fleet is provisioned through the
batched matchmaker and driven with deadline-guarded CRMA reads plus
closed-loop cross-traffic, while a :class:`~repro.runtime.churn
.ChurnEngine` replays a seeded fault campaign against the same fabric:
links flap (packets in flight fault and exercise the datalink replay
path), routers fail (packets are dropped in the switch), and a compute
node crashes (its heartbeats stop).

Recovery is live, on the simulated clock:

* the churn engine's heartbeat pump detects the crash through
  :meth:`~repro.runtime.fault.FaultHandler.check_heartbeats`
  (``detection_ns``);
* orphaned borrowers re-borrow replacement memory through one batched
  :meth:`~repro.cluster.matchmaker.Matchmaker.borrow_many` call, and
  the re-borrow is charged at its first successful remote access over
  the recovering fabric (``reborrow_ns``);
* reads that miss their deadline fail with a typed
  :class:`~repro.core.channels.backend.OpTimeoutError` and are
  re-submitted under an exponential-backoff
  :class:`~repro.core.channels.backend.RetryPolicy`, so flap-window
  losses heal instead of hanging the sweep.

Each fault scale is compared against a fault-free baseline of the same
shape, yielding the replay-storm amplification (datalink replays under
churn over replays from BER alone) and the steady-state throughput
degradation.  For a fixed campaign seed the whole run -- campaign,
detection, re-borrows, retries -- is byte-identical across repeats and
across both timer backends (:func:`churn_stats_dump` is the canonical
witness the determinism tests and the CI smoke compare).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import FigureReport
from repro.cluster import Cluster, ClusterConfig
from repro.cluster.matchmaker import ResourceShare
from repro.core.channels.backend import RetryPolicy
from repro.runtime.churn import ChurnConfig, ChurnEngine
from repro.runtime.fault import FaultHandler


@dataclass
class ClusterChurnConfig:
    """Churn-campaign sweep parameters."""

    #: Fat-tree sizes to sweep (compute nodes).
    node_counts: Tuple[int, ...] = (8, 16)
    #: Campaign intensities: fault counts scale linearly with each
    #: entry, and every entry is compared against the fault-free
    #: baseline (scale 0) of the same cluster shape.
    fault_scales: Tuple[int, ...] = (1, 2)
    #: Compute nodes per fat-tree leaf router.
    leaf_radix: int = 4
    #: Spine routers joining the leaves.
    num_spines: int = 2
    #: Campaign seed; one seed fixes every fault, retry and re-borrow.
    seed: int = 11
    #: Simulated time the workload keeps running (ns).
    horizon_ns: int = 6_000_000
    #: Idle gap between read waves (ns): the clock keeps moving between
    #: waves so campaign events land between, not only inside, them.
    wave_gap_ns: int = 250_000
    #: CRMA read payload (one cacheline).
    read_bytes: int = 64
    #: Remote memory each borrower requests.
    memory_per_borrower: int = 1 << 20
    #: Per-attempt read deadline (ns); a read that cannot finish --
    #: e.g. its route is flapped down -- fails typed instead of hanging.
    deadline_ns: int = 250_000
    #: Resubmit policy for deadline-failed reads.
    retry_attempts: int = 3
    retry_backoff_ns: int = 100_000
    #: Heartbeat cadence of the churn engine's pump (ns).
    heartbeat_period_ns: int = 200_000
    #: Silence threshold before a node is declared dead (ns).
    heartbeat_timeout_ns: int = 700_000
    #: Link-flap / router-outage / crash durations (ns).
    flap_duration_ns: int = 600_000
    router_down_ns: int = 800_000
    crash_down_ns: int = 4_000_000
    #: Timer backend for the shared simulators.
    scheduler: str = "auto"

    def __post_init__(self) -> None:
        if not self.node_counts or min(self.node_counts) < 4:
            raise ValueError("churn needs fat-tree clusters (>= 4 nodes)")
        if not self.fault_scales or min(self.fault_scales) < 1:
            raise ValueError("fault scales must all be at least 1")
        if self.horizon_ns <= 0 or self.wave_gap_ns <= 0:
            raise ValueError("horizon and wave gap must be positive")
        if self.deadline_ns <= 0:
            raise ValueError("read deadline must be positive")
        if self.scheduler not in ("auto", "heap", "calendar"):
            raise ValueError(f"unsupported scheduler {self.scheduler!r}")
        self.node_counts = tuple(sorted(set(self.node_counts)))
        self.fault_scales = tuple(sorted(set(self.fault_scales)))


def _churn_config(config: ClusterChurnConfig, scale: int) -> ChurnConfig:
    return ChurnConfig(
        seed=config.seed + scale,
        horizon_ns=config.horizon_ns,
        link_flaps=2 * scale,
        router_failures=scale,
        node_crashes=1,
        flap_duration_ns=config.flap_duration_ns,
        router_down_ns=config.router_down_ns,
        crash_down_ns=config.crash_down_ns,
        heartbeat_period_ns=config.heartbeat_period_ns,
        heartbeat_timeout_ns=config.heartbeat_timeout_ns,
    )


def _total_counter(transport, name: str) -> int:
    return sum(link.stats.counter(name).value
               for link in transport.fabric.datalinks.values())


def _run_once(config: ClusterChurnConfig, num_nodes: int,
              scale: int) -> Dict[str, object]:
    """One fleet under one campaign (``scale == 0``: fault-free baseline)."""
    cluster = Cluster(ClusterConfig(
        num_nodes=num_nodes, topology="fat_tree",
        leaf_radix=config.leaf_radix, num_spines=config.num_spines,
        transport_backend="event", scheduler=config.scheduler))
    matchmaker = cluster.matchmaker
    active: List[ResourceShare] = [
        share for batch in matchmaker.borrow_many(
            [(node, config.memory_per_borrower)
             for node in cluster.node_ids])
        for share in batch]
    transport = cluster.event_transport()
    sim = transport.sim
    noise = cluster.cross_traffic()
    # Donor-crash recovery goes through the matchmaker (channel and
    # grant rebuilt), not the monitor-side in-place reallocation.
    handler = FaultHandler(cluster.monitor, reallocate_on_node_failure=False)
    retry = RetryPolicy(max_attempts=config.retry_attempts,
                        backoff_ns=config.retry_backoff_ns)

    dead: set = set()
    pending_crashes: List[Tuple[int, int]] = []
    engine: Optional[ChurnEngine] = None
    if scale > 0:
        engine = ChurnEngine(
            transport, cluster.monitor, handler,
            _churn_config(config, scale),
            on_node_failure=lambda node, _plan: (
                dead.add(node), pending_crashes.append((node, sim.now))))
        engine.start()

    reads_ok = 0
    reads_gave_up = 0
    latency_total_ns = 0
    reborrow_latencies: List[int] = []

    def reborrow(node: int, detected_at: int) -> None:
        """Replace every share the dead node served (or consumed)."""
        lost = [share for share in active
                if share.donor == node or share.requester == node]
        for share in lost:
            # The fault handler already settled the Monitor Node's
            # books for these grants; only the matchmaker's share
            # tracking is retired here.
            share.released = True
            if share in matchmaker.shares:
                matchmaker.shares.remove(share)
            active.remove(share)
        requests = [(share.requester, share.amount) for share in lost
                    if share.requester not in dead]
        if not requests:
            return
        replacements = [share for batch in matchmaker.borrow_many(requests)
                        for share in batch]
        # The re-borrow is charged at its first successful access: the
        # batch is not "recovered" until data moves over the new routes.
        ops = [transport.submit_with_retry(
                   lambda share=share: share.channel.submit_read(
                       config.read_bytes, deadline_ns=config.deadline_ns),
                   retry, label=f"reborrow-n{share.requester}")
               for share in replacements]
        transport.drive_all(ops)
        reborrow_latencies.append(sim.now - detected_at)
        active.extend(replacements)

    while sim.now < config.horizon_ns:
        ops = [transport.submit_with_retry(
                   lambda share=share: share.channel.submit_read(
                       config.read_bytes, deadline_ns=config.deadline_ns),
                   retry, label=f"read-n{share.requester}")
               for share in active]
        transport.drive_all(ops)
        for op in ops:
            if op.done:
                reads_ok += 1
                latency_total_ns += op.latency_ns
            else:
                reads_gave_up += 1
        if pending_crashes:
            for node, detected_at in pending_crashes:
                reborrow(node, detected_at)
            pending_crashes.clear()
        sim.run(until=sim.now + config.wave_gap_ns)

    if engine is not None:
        engine.stop()
    noise.stop()
    sim.run_until_idle()
    if getattr(sim, "sanitize", False):
        # Zero-hang audit: every injected packet delivered, dropped or
        # timed out -- only meaningful when the lifecycle ledger is on.
        transport.check_packet_lifecycle()

    makespan_ns = sim.now
    detection = (list(engine.detection_latency_ns.values())
                 if engine is not None else [])
    return {
        "reads_ok": reads_ok,
        "reads_gave_up": reads_gave_up,
        "mean_read_ns": (latency_total_ns / reads_ok) if reads_ok else 0.0,
        "goodput_ops_per_ms": reads_ok / (makespan_ns / 1e6),
        "makespan_ns": makespan_ns,
        "ops_timed_out": transport.ops_timed_out,
        "packets_timed_out": transport.packets_timed_out,
        "replays": _total_counter(transport, "replays"),
        "link_faults": _total_counter(transport, "link_faults"),
        "detection_ns": detection,
        "reborrow_ns": list(reborrow_latencies),
        "engine": engine.stats_dict() if engine is not None else {},
        "events": sim.events_processed,
    }


def churn_stats_dump(config: Optional[ClusterChurnConfig] = None,
                     num_nodes: int = 8, scale: int = 1) -> str:
    """Canonical JSON witness of one churn run (determinism probe).

    Two calls with the same config are byte-identical, on either timer
    backend -- the acceptance gate the determinism tests and the CI
    churn smoke both check.
    """
    config = config or ClusterChurnConfig()
    return json.dumps(_run_once(config, num_nodes, scale), sort_keys=True)


def _mean(values: List[int]) -> float:
    return (sum(values) / len(values)) if values else 0.0


def run_fig_cluster_churn(
        config: Optional[ClusterChurnConfig] = None) -> FigureReport:
    """Sweep fault scales per cluster size; report recovery metrics."""
    config = config or ClusterChurnConfig()

    goodput: Dict[str, float] = {}
    degradation_pct: Dict[str, float] = {}
    replay_amplification: Dict[str, float] = {}
    detection_ns: Dict[str, float] = {}
    reborrow_ns: Dict[str, float] = {}
    recovery_ns: Dict[str, float] = {}
    timed_out: Dict[str, float] = {}
    gave_up: Dict[str, float] = {}

    for num_nodes in config.node_counts:
        baseline = _run_once(config, num_nodes, scale=0)
        goodput[f"{num_nodes}n_x0"] = baseline["goodput_ops_per_ms"]
        for scale in config.fault_scales:
            label = f"{num_nodes}n_x{scale}"
            churn = _run_once(config, num_nodes, scale)
            goodput[label] = churn["goodput_ops_per_ms"]
            degradation_pct[label] = 100.0 * (
                1.0 - churn["goodput_ops_per_ms"]
                / baseline["goodput_ops_per_ms"])
            replay_amplification[label] = (
                churn["replays"] / max(1, baseline["replays"]))
            detection_ns[label] = _mean(churn["detection_ns"])
            reborrow_ns[label] = _mean(churn["reborrow_ns"])
            recovery_ns[label] = detection_ns[label] + reborrow_ns[label]
            timed_out[label] = float(churn["ops_timed_out"])
            gave_up[label] = float(churn["reads_gave_up"])

    report = FigureReport(
        figure_id="fig_cluster_churn",
        title="Deterministic fault campaigns over the contended event "
              f"fabric (fat-tree, seed {config.seed}, "
              f"{config.horizon_ns / 1e6:.0f} ms horizon)",
        notes="shape target: replay amplification above 1.0 (flapped "
              "links fault in-flight packets into the replay path), "
              "crash recovery bounded by heartbeat timeout plus one "
              "batched re-borrow, and throughput degradation growing "
              "with fault scale while every lost read fails typed "
              "(no hangs) and retries heal the flap windows",
    )
    report.add_series("goodput_ops_per_ms", goodput)
    report.add_series("throughput_degradation_percent", degradation_pct)
    report.add_series("replay_amplification", replay_amplification)
    report.add_series("crash_detection_ns", detection_ns)
    report.add_series("reborrow_ns", reborrow_ns)
    report.add_series("recovery_ns", recovery_ns)
    report.add_series("ops_timed_out", timed_out)
    report.add_series("reads_gave_up", gave_up)
    return report


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_fig_cluster_churn().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
