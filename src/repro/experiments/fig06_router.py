"""Figure 6: performance impact of an off-chip router on the path.

Section 4.2.2 repeats the Figure 5 experiment with a one-level external
router inserted between the two nodes and reports the *additional*
overhead (in percent) each configuration suffers.  The headline
observations: the faster a configuration is, the more the extra hop
hurts (over 20 % for on-chip CRMA), except when the software already
hides latency (the asynchronous PageRank version barely notices).
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.metrics import percent_overhead
from repro.analysis.report import FigureReport
from repro.experiments.common import ExperimentPlatform
from repro.experiments.fig05_arch_support import (
    CONFIGURATIONS,
    Fig05Config,
    measure_times,
)

#: Figure 6 values (percent overhead added by the router).
PAPER_REFERENCE_PAGERANK: Dict[str, float] = {
    "off_chip_qpair": 11.70,
    "on_chip_qpair": 13.42,
    "async_on_chip_qpair": 2.02,
    "off_chip_crma": 13.92,
    "on_chip_crma": 22.72,
}
PAPER_REFERENCE_BERKELEYDB: Dict[str, float] = {
    "off_chip_qpair": 7.66,
    "on_chip_qpair": 7.33,
    "async_on_chip_qpair": 7.39,
    "off_chip_crma": 11.08,
    "on_chip_crma": 16.13,
}


def run_fig06(config: Fig05Config = None,
              platform: ExperimentPlatform = None) -> FigureReport:
    """Measure router-induced overheads and return the report."""
    config = config or Fig05Config()
    platform = platform or ExperimentPlatform()
    direct_times = measure_times(config, platform, through_router=False)
    routed_times = measure_times(config, platform, through_router=True)

    report = FigureReport(
        figure_id="fig06",
        title="Performance impact of one-level external router "
              "(percent overhead versus direct chip-to-chip connection)",
        notes="shape target: overhead grows with configuration performance; the "
              "asynchronous PageRank version is nearly immune",
    )
    for workload, reference in (("pagerank", PAPER_REFERENCE_PAGERANK),
                                ("berkeleydb", PAPER_REFERENCE_BERKELEYDB)):
        overheads = {
            name: percent_overhead(routed_times[workload][name],
                                   direct_times[workload][name])
            for name in CONFIGURATIONS
        }
        report.add_series(workload, overheads, reference=reference)
    return report


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_fig06().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
