"""Monitor-Node sharding: failover, throughput and contention sweeps.

Three questions about the sharded, replicated Monitor Node
(:mod:`repro.runtime.shard`), answered on one deterministic harness:

* **Does failover work, and how fast?**  Event-backed fat-tree fleets
  (8/16 nodes, shard counts 1/2/4) run waves of *batched* borrows
  through the split-phase matchmaker protocol (queue, plan, execute)
  while a churn campaign crashes shard primaries (``mn_crash``)
  between the phases.  The heartbeat pump promotes each standby and
  replays the in-flight tickets; the sweep reports the failover
  latency distribution, replayed-ticket counts and the
  allocations-lost ledger (zero by construction -- audited against the
  donor byte ledgers with the sanitizer on).
* **Does sharding buy throughput?**  A 64-node batched-borrow sweep
  compares the coordinator's modelled plan makespan (per-shard serial
  service, parallel across shards, plus routing/spill-forward costs)
  against the single-MN serial equivalent of the same batch.
* **Does measured contention steer donors better than distance?**  On
  a contended 16-node fleet whose near donors sit behind saturated
  leaf links, :class:`~repro.runtime.policies.ContentionAwarePolicy`
  (fed live ``busy_fraction`` telemetry) is swept against
  :class:`~repro.runtime.policies.DistanceFirstPolicy` and compared on
  per-borrower slowdown.

For a fixed seed every run -- campaign, promotions, replays, borrows
-- is byte-identical across repeats and across the heap and calendar
timer backends (:func:`mn_failover_stats_dump` is the canonical
witness the determinism tests and the CI churn smoke compare).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import FigureReport
from repro.cluster import Cluster, ClusterConfig
from repro.cluster.matchmaker import ResourceShare
from repro.runtime.churn import ChurnConfig, ChurnEngine
from repro.runtime.fault import FaultHandler
from repro.runtime.monitor import AllocationError
from repro.runtime.shard import ShardUnavailableError
from repro.runtime.tables import ResourceKind


@dataclass
class MnFailoverConfig:
    """Sharded-monitor sweep parameters."""

    #: Fat-tree sizes for the failover runs (compute nodes).
    node_counts: Tuple[int, ...] = (8, 16)
    #: Shard counts swept per cluster size (clamped to the leaf count).
    shard_counts: Tuple[int, ...] = (1, 2, 4)
    #: Compute nodes per fat-tree leaf router.
    leaf_radix: int = 4
    #: Spine routers joining the leaves.
    num_spines: int = 2
    #: Campaign seed; one seed fixes every crash, promotion and replay.
    seed: int = 23
    #: Simulated time the borrow workload keeps running (ns).
    horizon_ns: int = 6_000_000
    #: Gap between the queue/plan/execute phases of each wave (ns):
    #: campaign events land *between* the synchronous phases, which is
    #: exactly the mid-batch crash window under test.
    wave_gap_ns: int = 150_000
    #: Remote memory each borrower requests per wave.
    memory_per_borrower: int = 1 << 20
    #: Heartbeat cadence of the churn engine's pump (ns).
    heartbeat_period_ns: int = 200_000
    #: Silence threshold before a node is declared dead (ns).
    heartbeat_timeout_ns: int = 700_000
    #: How long a crashed shard primary's host stays away (ns).
    mn_crash_down_ns: int = 1_500_000
    #: Cluster size for the coordinator-throughput sweep.
    throughput_nodes: int = 64
    #: Borrowers in the contention sweep read this many bytes per probe.
    probe_bytes: int = 65536
    #: Cross-traffic warm-up before contended borrows (ns).
    noise_warmup_ns: int = 400_000
    #: Cross-traffic intensity on the hot leaf (saturates its links).
    noise_payload_bytes: int = 4096
    noise_window: int = 8
    #: Timer backend for the shared simulators.
    scheduler: str = "auto"
    #: Runtime sanitizer for the event-backed runs (None defers to the
    #: ``SIM_SANITIZE`` environment variable).
    sanitize: Optional[bool] = None

    def __post_init__(self) -> None:
        if not self.node_counts or min(self.node_counts) < 8:
            raise ValueError(
                "failover sweeps need fat-tree clusters (>= 8 nodes)")
        if not self.shard_counts or min(self.shard_counts) < 1:
            raise ValueError("shard counts must all be at least 1")
        if self.horizon_ns <= 0 or self.wave_gap_ns <= 0:
            raise ValueError("horizon and wave gap must be positive")
        if self.scheduler not in ("auto", "heap", "calendar"):
            raise ValueError(f"unsupported scheduler {self.scheduler!r}")
        self.node_counts = tuple(sorted(set(self.node_counts)))
        self.shard_counts = tuple(sorted(set(self.shard_counts)))


# ----------------------------------------------------------------------
# Failover runs (event-backed, mn_crash campaign)
# ----------------------------------------------------------------------
def _failover_churn_config(config: MnFailoverConfig,
                           num_shards: int) -> ChurnConfig:
    """A campaign of *only* shard-primary crashes (one per shard)."""
    return ChurnConfig(
        seed=config.seed,
        horizon_ns=config.horizon_ns,
        link_flaps=0,
        router_failures=0,
        node_crashes=0,
        mn_crashes=num_shards,
        mn_crash_down_ns=config.mn_crash_down_ns,
        heartbeat_period_ns=config.heartbeat_period_ns,
        heartbeat_timeout_ns=config.heartbeat_timeout_ns,
    )


def _run_failover_once(config: MnFailoverConfig, num_nodes: int,
                       num_shards: int) -> Dict[str, object]:
    """One event-backed fleet borrowing in waves under mn_crash churn."""
    cluster = Cluster(ClusterConfig(
        num_nodes=num_nodes, topology="fat_tree",
        leaf_radix=config.leaf_radix, num_spines=config.num_spines,
        monitor_shards=num_shards,
        transport_backend="event", scheduler=config.scheduler,
        sanitize=config.sanitize))
    matchmaker = cluster.matchmaker
    monitor = cluster.monitor
    transport = cluster.event_transport()
    sim = transport.sim
    handler = FaultHandler(monitor, reallocate_on_node_failure=False)
    engine = ChurnEngine(transport, monitor, handler,
                         _failover_churn_config(config, monitor.num_shards))
    engine.start()

    borrows_ok = 0
    waves_completed = 0
    waves_deferred = 0     # plan refused: a primary was down
    waves_interrupted = 0  # execute aborted mid-batch by a crash
    requests = [(node, config.memory_per_borrower)
                for node in cluster.node_ids]

    def settle(batches: List[List[ResourceShare]]) -> int:
        count = 0
        for batch in batches:
            count += len(batch)
        for batch in reversed(batches):
            for share in reversed(batch):
                matchmaker.release(share)
        return count

    while sim.now < config.horizon_ns:
        if monitor.queued_requests == 0:
            matchmaker.queue_requests(requests)
        # Phase gap 1: a crash here lands between queue and plan.
        sim.run(until=sim.now + config.wave_gap_ns)
        try:
            entries = matchmaker.plan_queued()
        except ShardUnavailableError:
            # Queue intact; the next pump round promotes the standby.
            waves_deferred += 1
            sim.run(until=sim.now + config.heartbeat_period_ns)
            continue
        # Phase gap 2: a crash here lands between plan and allocation.
        sim.run(until=sim.now + config.wave_gap_ns)
        try:
            batches = matchmaker.execute_plan(entries)
        except ShardUnavailableError:
            # Created shares were unwound; the unfinished tickets stay
            # in flight and the promotion replays them onto the queue.
            waves_interrupted += 1
            sim.run(until=sim.now + config.heartbeat_period_ns)
            continue
        borrows_ok += settle(batches)
        waves_completed += 1
        sim.run(until=sim.now + config.wave_gap_ns)

    engine.stop()
    # Finish anything the last promotion replayed onto the queue.
    while monitor.queued_requests:
        try:
            borrows_ok += settle(matchmaker.borrow_queued())
            waves_completed += 1
        except AllocationError:
            break
    sim.run_until_idle()
    if getattr(sim, "sanitize", False):
        transport.check_packet_lifecycle()

    # Ledger audit: every grant released, every donor byte returned.
    active_allocations = len(monitor.rat.active())
    donated_bytes = sum(cluster.node(node).agent.donated_bytes
                        for node in cluster.node_ids)
    shard_stats = monitor.stats_dict()
    return {
        "num_nodes": num_nodes,
        "num_shards": monitor.num_shards,
        "borrows_ok": borrows_ok,
        "waves_completed": waves_completed,
        "waves_deferred": waves_deferred,
        "waves_interrupted": waves_interrupted,
        "failover_ns": [latency for _shard, latency
                        in sorted(engine.mn_failover_ns.items())],
        "tickets_replayed": monitor.tickets_replayed,
        "allocations_lost": monitor.allocations_lost,
        "allocations_recovered": monitor.allocations_recovered,
        "ledger_balanced": monitor.ledger_balanced(),
        "active_allocations_at_end": active_allocations,
        "donated_bytes_at_end": donated_bytes,
        "orphaned_releases": monitor.orphaned_releases,
        "engine": engine.stats_dict(),
        "shards": shard_stats,
        "events": sim.events_processed,
    }


def mn_failover_stats_dump(config: Optional[MnFailoverConfig] = None,
                           num_nodes: int = 8, num_shards: int = 2) -> str:
    """Canonical JSON witness of one failover run (determinism probe).

    Two calls with the same config are byte-identical, on either timer
    backend -- the acceptance gate the determinism tests and the CI
    churn smoke both check.
    """
    config = config or MnFailoverConfig()
    return json.dumps(_run_failover_once(config, num_nodes, num_shards),
                      sort_keys=True)


# ----------------------------------------------------------------------
# Coordinator-throughput sweep (modelled plan makespan, closed form)
# ----------------------------------------------------------------------
def _run_throughput_once(config: MnFailoverConfig,
                         num_shards: int) -> Dict[str, float]:
    """One 64-node batched-borrow wave; compare modelled plan costs."""
    cluster = Cluster(ClusterConfig(
        num_nodes=config.throughput_nodes, topology="fat_tree",
        leaf_radix=config.leaf_radix, num_spines=config.num_spines,
        monitor_shards=num_shards))
    matchmaker = cluster.matchmaker
    monitor = cluster.monitor
    batches = matchmaker.borrow_many(
        [(node, config.memory_per_borrower) for node in cluster.node_ids])
    for batch in reversed(batches):
        for share in reversed(batch):
            matchmaker.release(share)
    coordinator = monitor.coordinator
    planned = coordinator.requests_planned
    makespan_ns = coordinator.total_plan_makespan_ns
    # The single-MN equivalent serialises every request through one
    # server with no routing or spill-forward overhead.
    single_mn_ns = planned * coordinator.mn_service_ns
    return {
        "requests_planned": float(planned),
        "plan_makespan_ns": float(makespan_ns),
        "single_mn_ns": float(single_mn_ns),
        "spill_forwards": float(coordinator.spill_forwards),
        "throughput_x": single_mn_ns / makespan_ns if makespan_ns else 0.0,
    }


# ----------------------------------------------------------------------
# Contention sweep (distance-first vs contention-aware)
# ----------------------------------------------------------------------
def _contended_cluster(config: MnFailoverConfig) -> Cluster:
    """16-node fleet where the nearest donors sit behind hot links.

    Leaf 0's nodes (0-3) and leaf 1's nodes (4-7) are the only donors
    -- equidistant from every borrower on leaves 2/3 (nodes 8-15) --
    and intra-leaf-0 cross-traffic saturates leaf 0's links, so
    distance-first (node-id tie-break) piles borrowers onto the hot
    donors while a telemetry-fed policy should route around them.
    """
    cluster = Cluster(ClusterConfig(
        num_nodes=16, topology="fat_tree",
        leaf_radix=config.leaf_radix, num_spines=config.num_spines,
        transport_backend="event", scheduler=config.scheduler,
        sanitize=config.sanitize))
    for node in cluster.node_ids:
        agent = cluster.node(node).agent
        if node >= 8:
            # Borrowers: no idle memory to donate.
            agent.set_local_usage(agent.memory_capacity_bytes)
        else:
            # Donors: exactly two borrower-grants' worth of idle memory.
            idle = 2 * config.memory_per_borrower
            agent.set_local_usage(max(0, agent.memory_capacity_bytes
                                      - agent.reserve_bytes - idle))
    cluster.monitor.collect_heartbeats()
    return cluster


def _run_contention_once(config: MnFailoverConfig,
                         contention_aware: bool) -> Dict[str, float]:
    cluster = _contended_cluster(config)
    if contention_aware:
        cluster.enable_contention_telemetry()
    transport = cluster.event_transport()
    sim = transport.sim
    # Intra-leaf-0 ring: every flow crosses leaf 0's up/down links only.
    noise = cluster.cross_traffic(
        flows=[(0, 1), (1, 2), (2, 3), (3, 0)],
        payload_bytes=config.noise_payload_bytes,
        window=config.noise_window, turnaround_ns=0)
    sim.run(until=sim.now + config.noise_warmup_ns)

    matchmaker = cluster.matchmaker
    shares: List[ResourceShare] = []
    for borrower in range(8, 16):
        shares.extend(matchmaker.borrow_memory(
            borrower, config.memory_per_borrower))
    hot_donor_shares = sum(1 for share in shares if share.donor < 4)
    # Contended probe: all borrowers read concurrently with the noise.
    contended = matchmaker.touch_shares(shares,
                                        size_bytes=config.probe_bytes)
    noise.stop()
    sim.run_until_idle()
    # Baseline probe: the same reads serialised on a quiet fabric.
    baseline: Dict[ResourceShare, int] = {}
    for share in shares:
        op = share.channel.submit_read(config.probe_bytes)
        transport.drive_all([op])
        baseline[share] = op.latency_ns
    slowdowns = [contended[share] / baseline[share] for share in shares]
    if getattr(sim, "sanitize", False):
        transport.check_packet_lifecycle()
    for share in reversed(shares):
        matchmaker.release(share)
    return {
        "per_borrower_slowdown": sum(slowdowns) / len(slowdowns),
        "worst_slowdown": max(slowdowns),
        "hot_donor_shares": float(hot_donor_shares),
    }


def _mean(values: List[int]) -> float:
    return (sum(values) / len(values)) if values else 0.0


def run_fig_mn_failover(
        config: Optional[MnFailoverConfig] = None) -> FigureReport:
    """Sweep shard counts per cluster size; report failover metrics."""
    config = config or MnFailoverConfig()

    failover_ns: Dict[str, float] = {}
    failover_worst_ns: Dict[str, float] = {}
    tickets_replayed: Dict[str, float] = {}
    allocations_lost: Dict[str, float] = {}
    borrows_ok: Dict[str, float] = {}
    waves_interrupted: Dict[str, float] = {}
    for num_nodes in config.node_counts:
        for num_shards in config.shard_counts:
            run = _run_failover_once(config, num_nodes, num_shards)
            label = f"{num_nodes}n_s{run['num_shards']}"
            failover_ns[label] = _mean(run["failover_ns"])
            failover_worst_ns[label] = float(max(run["failover_ns"],
                                                 default=0))
            tickets_replayed[label] = float(run["tickets_replayed"])
            allocations_lost[label] = float(run["allocations_lost"])
            borrows_ok[label] = float(run["borrows_ok"])
            waves_interrupted[label] = float(run["waves_interrupted"]
                                             + run["waves_deferred"])

    throughput_x: Dict[str, float] = {}
    plan_makespan_ns: Dict[str, float] = {}
    for num_shards in config.shard_counts:
        sweep = _run_throughput_once(config, num_shards)
        label = f"{config.throughput_nodes}n_s{num_shards}"
        throughput_x[label] = sweep["throughput_x"]
        plan_makespan_ns[label] = sweep["plan_makespan_ns"]

    slowdown: Dict[str, float] = {}
    hot_donor_shares: Dict[str, float] = {}
    for aware, label in ((False, "distance_first"),
                         (True, "contention_aware")):
        run = _run_contention_once(config, contention_aware=aware)
        slowdown[label] = run["per_borrower_slowdown"]
        hot_donor_shares[label] = run["hot_donor_shares"]

    report = FigureReport(
        figure_id="fig_mn_failover",
        title="Sharded Monitor Node: crash failover, coordinator "
              f"throughput and contention-aware matchmaking (seed "
              f"{config.seed})",
        notes="shape target: failover latency bounded by one heartbeat "
              "period after the crash, zero allocations lost (replicated "
              "commit log + buffered releases), interrupted batches "
              "replayed exactly once; coordinator plan makespan dropping "
              "with shard count (>= 2x the single-MN serial cost at 4 "
              "shards on 64 nodes); contention-aware donor choice "
              "routing around measured-hot leaf links for a lower "
              "per-borrower slowdown than distance-first",
    )
    report.add_series("failover_mean_ns", failover_ns)
    report.add_series("failover_worst_ns", failover_worst_ns)
    report.add_series("tickets_replayed", tickets_replayed)
    report.add_series("allocations_lost", allocations_lost)
    report.add_series("borrows_ok", borrows_ok)
    report.add_series("waves_disrupted", waves_interrupted)
    report.add_series("coordinator_throughput_x", throughput_x)
    report.add_series("plan_makespan_ns", plan_makespan_ns)
    report.add_series("per_borrower_slowdown", slowdown)
    report.add_series("hot_donor_shares", hot_donor_shares)
    return report


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_fig_mn_failover().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
