"""Experiment drivers: one module per table/figure of the evaluation.

Every driver exposes a ``run_*`` function returning a
:class:`repro.analysis.report.FigureReport` whose series carry both the
measured values and (where the paper states them) the paper's reference
numbers, so ``benchmarks/`` can print paper-versus-measured rows.

Absolute magnitudes are not expected to match the authors' FPGA
prototype; the reproduction targets the *shape* of each result -- which
configuration wins, by roughly what factor, and where the crossovers
fall.  Scaling factors (dataset and memory sizes reduced together) are
documented per driver.
"""

from repro.experiments.fig03_commodity import run_fig03
from repro.experiments.fig05_arch_support import run_fig05
from repro.experiments.fig06_router import run_fig06
from repro.experiments.fig14_redis_memory import run_fig14
from repro.experiments.fig15_remote_memory import run_fig15
from repro.experiments.fig16_accel_nic import run_fig16a, run_fig16b
from repro.experiments.fig17_channels import run_fig17
from repro.experiments.fig18_flow_control import run_fig18
from repro.experiments.fig_cluster_contended import run_fig_cluster_contended
from repro.experiments.fig_cluster_contention import (
    run_fig_cluster_contention,
    run_fig_cluster_contention_closed_loop,
)
from repro.experiments.fig_cluster_scaling import run_fig_cluster_scaling
from repro.experiments.hardware_cost import run_hardware_cost

__all__ = [
    "run_fig03",
    "run_fig05",
    "run_fig06",
    "run_fig14",
    "run_fig15",
    "run_fig16a",
    "run_fig16b",
    "run_fig17",
    "run_fig18",
    "run_fig_cluster_contended",
    "run_fig_cluster_contention",
    "run_fig_cluster_contention_closed_loop",
    "run_fig_cluster_scaling",
    "run_hardware_cost",
]
